//! The differential conformance harness.
//!
//! [`check_graph`] certifies one instance against the full scheme suite;
//! [`run_corpus`] drives it over a whole [`corpus`](crate::corpus) with
//! `std::thread::scope` workers. A *certified* instance is one with zero
//! recorded violations:
//!
//! * the cached [`Instance`] analysis agrees with the free view-class
//!   analysis ([`anet_views::election_index::analyze`]), on the instance and
//!   on a node-renumbered isomorphic copy;
//! * on feasible instances, every scheme of [`scheme_suite`] elects a
//!   leader that
//!   re-certifies under [`verify_election`], within its theorem time bound
//!   (or the generic `D + P + 1` guarantee for the asymptotic milestone
//!   bounds at tiny φ) and its advice-size bound, with the exact theorem
//!   shapes `time == φ` (min-time) and `time == D + φ` (remark) pinned;
//! * every scheme is **equivariant**: on the renumbered copy it elects the
//!   corresponding leader with identical time and advice bits;
//! * on infeasible instances every scheme refuses, and infeasibility (with
//!   the same view-quotient size) is preserved by renumbering;
//! * the session caches compute the expensive analysis exactly once across
//!   the suite ([`Instance::compute_counts`]);
//! * the quotient dimension certifies: the minimum base round-trips through
//!   `base.lift()` onto the instance, the base-time analysis transfers back
//!   bit-identically (report and class rows), the base size equals the
//!   distinct-view count, and the renumbering-invariant canonical-quotient
//!   key is identical on the renumbered copy;
//! * every fault dimension of the [`faults`](crate::faults) analysis
//!   behaves as certified (outcome-identical under phase skew,
//!   degraded-but-correct under absorbable loss and crash/recovery,
//!   correctly-refused under crash-stop and on infeasible instances).

use std::sync::atomic::{AtomicUsize, Ordering};

use anet_election::{scheme_suite, verify_election, Instance};
use anet_graph::{relabel, Graph};
use anet_views::election_index;

use crate::corpus::{build_corpus, mix, CorpusSpec};
use crate::faults::{fault_records, FaultRecord};

/// One scheme run on one instance, as recorded in the conformance report
/// (no wall-clock fields: reports are byte-deterministic per seed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeRecord {
    /// Scheme name (`min_time`, `generic(x=..)`, `milestone1..4`, `remark`).
    pub scheme: String,
    /// Size of the scheme's advice in bits.
    pub advice_bits: usize,
    /// Measured election time in rounds.
    pub time: usize,
    /// The scheme's theorem time bound on this instance.
    pub time_bound: usize,
    /// The bound certification actually checks: the theorem bound, or the
    /// generic `D + P + 1` guarantee when the scheme ran `Generic(P)` and
    /// the asymptotic milestone bound is not yet binding at this φ.
    pub effective_bound: usize,
}

/// The conformance report of one corpus instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceReport {
    /// Instance name (from the corpus).
    pub name: String,
    /// Generator class (from the corpus).
    pub kind: &'static str,
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Whether the instance is feasible.
    pub feasible: bool,
    /// The election index, when feasible.
    pub phi: Option<usize>,
    /// The diameter.
    pub diameter: usize,
    /// Number of distinct (infinite) views — the view-quotient size.
    pub distinct_views: usize,
    /// The depth at which the view partition stabilized.
    pub stable_depth: usize,
    /// Renumbering-invariant canonical-quotient dedup key (the canonical
    /// form's hash as 16 hex digits): corpus instances sharing a key share
    /// a minimum base up to isomorphism.
    pub quotient_key: String,
    /// Number of nodes of the minimum base (= the distinct-view count).
    pub quotient_size: usize,
    /// Fiber size of the covering projection (`n / quotient_size`).
    pub fold: usize,
    /// Whether the quotient dimension certified: `base.lift()` round-trips
    /// onto this instance and every base-time result (feasibility report,
    /// class rows) transferred back bit-identical to the direct oracle.
    pub quotient_certified: bool,
    /// Per-scheme measurements (empty on infeasible instances).
    pub schemes: Vec<SchemeRecord>,
    /// Whether every scheme behaved identically (leader modulo the
    /// permutation, same time, same advice bits) on the renumbered copy.
    pub equivariant: bool,
    /// Certified fault dimensions (the [`faults`](crate::faults)
    /// analysis), one record per dimension.
    pub faults: Vec<FaultRecord>,
    /// Human-readable descriptions of every violated check (empty =
    /// certified).
    pub violations: Vec<String>,
}

impl InstanceReport {
    /// Whether the instance passed every check.
    pub fn certified(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Aggregate counts over a corpus run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Summary {
    /// Instances checked.
    pub total: usize,
    /// Feasible instances with zero violations.
    pub feasible_certified: usize,
    /// Infeasible instances with zero violations (every scheme refused).
    pub infeasible_certified: usize,
    /// Number of distinct canonical-quotient keys across the corpus (the
    /// dedup dimension: how many genuinely different minimum bases the
    /// corpus exercises).
    pub distinct_quotients: usize,
    /// Total violation count across all instances.
    pub violations: usize,
}

impl Summary {
    /// Folds a slice of reports into totals.
    pub fn of(reports: &[InstanceReport]) -> Summary {
        let mut s = Summary {
            total: reports.len(),
            ..Summary::default()
        };
        let mut keys = std::collections::BTreeSet::new();
        for r in reports {
            s.violations += r.violations.len();
            keys.insert(r.quotient_key.as_str());
            if r.certified() {
                if r.feasible {
                    s.feasible_certified += 1;
                } else {
                    s.infeasible_certified += 1;
                }
            }
        }
        s.distinct_quotients = keys.len();
        s
    }
}

/// Certifies one graph; `perm_seed` drives the equivariance renumbering.
pub fn check_graph(name: &str, kind: &'static str, g: &Graph, perm_seed: u64) -> InstanceReport {
    let mut violations: Vec<String> = Vec::new();
    let inst = Instance::new(g);
    let cached = inst.feasibility();

    // Differential: the session cache against the free one-pass analysis.
    let free = election_index::analyze(g);
    if cached != free {
        violations.push(format!(
            "Instance::feasibility {cached:?} disagrees with election_index::analyze {free:?}"
        ));
    }

    // The renumbered isomorphic copy used by every equivariance check.
    let (h, perm) = relabel::random_node_permutation(g, perm_seed);
    let inst_h = Instance::new(&h);
    let cached_h = inst_h.feasibility();
    let mut equivariant = true;
    if cached_h != cached {
        equivariant = false;
        violations.push(format!(
            "feasibility not invariant under renumbering: {cached:?} vs {cached_h:?}"
        ));
    }

    // Quotient dimension: the minimum base must certify (its lift
    // round-trips onto this exact graph) and every base-time result must
    // transfer back bit-identical to the direct oracle already checked
    // above. The dedup key is the canonical form's hash, which must also be
    // invariant under the renumbering.
    let quotient_key = format!("{:016x}", g.canonical_form().hash());
    let mut quotient_certified = true;
    let mut quotient_size = 0usize;
    let mut fold = 0usize;
    match inst.certify_quotient() {
        Err(e) => {
            quotient_certified = false;
            violations.push(format!("minimum base failed to certify: {e}"));
        }
        Ok(()) => {
            quotient_size = inst.quotient_size().unwrap_or(0);
            fold = inst.quotient_fold().unwrap_or(0);
            if quotient_size != cached.distinct_views {
                quotient_certified = false;
                violations.push(format!(
                    "quotient size {quotient_size} != {} distinct views",
                    cached.distinct_views
                ));
            }
            match inst.quotient_feasibility() {
                Ok(qr) if qr == cached => {}
                Ok(qr) => {
                    quotient_certified = false;
                    violations.push(format!(
                        "quotient-lifted report {qr:?} != direct {cached:?}"
                    ));
                }
                Err(e) => {
                    quotient_certified = false;
                    violations.push(format!("quotient analysis failed: {e}"));
                }
            }
            for depth in [0, cached.stable_depth, cached.stable_depth + 1] {
                match inst.quotient_class_row(depth) {
                    Ok(row) if row == inst.class_row(depth) => {}
                    Ok(_) => {
                        quotient_certified = false;
                        violations.push(format!(
                            "quotient class row at depth {depth} differs from direct"
                        ));
                    }
                    Err(e) => {
                        quotient_certified = false;
                        violations.push(format!("quotient class row at depth {depth}: {e}"));
                    }
                }
            }
        }
    }
    let key_h = format!("{:016x}", h.canonical_form().hash());
    if key_h != quotient_key {
        quotient_certified = false;
        equivariant = false;
        violations.push(format!(
            "quotient key not invariant under renumbering: {quotient_key} vs {key_h}"
        ));
    }

    let diameter = inst.diameter();
    let mut schemes: Vec<SchemeRecord> = Vec::new();
    match inst.phi() {
        Err(_) => {
            // Infeasible: no advice can enable election; every scheme must
            // refuse (at the advice or the run stage).
            for scheme in scheme_suite(1) {
                if scheme.elect(&inst).is_ok() {
                    violations.push(format!(
                        "{} succeeded on an infeasible graph",
                        scheme.name()
                    ));
                }
            }
        }
        Ok(phi) => {
            if cached.distinct_views != g.num_nodes() {
                violations.push(format!(
                    "feasible but {} distinct views != n = {}",
                    cached.distinct_views,
                    g.num_nodes()
                ));
            }
            for scheme in scheme_suite(phi) {
                let outcome = match scheme.elect(&inst) {
                    Ok(o) => o,
                    Err(e) => {
                        violations.push(format!("{} failed: {e}", scheme.name()));
                        equivariant = false;
                        continue;
                    }
                };
                // Re-certify the outputs independently of the scheme's own
                // verification.
                match verify_election(g, &outcome.outputs) {
                    Ok(leader) if leader == outcome.leader => {}
                    Ok(leader) => violations.push(format!(
                        "{}: reported leader {} but outputs elect {leader}",
                        scheme.name(),
                        outcome.leader
                    )),
                    Err(e) => violations
                        .push(format!("{}: outputs fail verification: {e}", scheme.name())),
                }
                // Theorem bounds. Milestone time bounds are asymptotic: at
                // tiny φ the reconstructed parameter P can exceed f_i(φ), in
                // which case the generic D + P + 1 guarantee is the binding
                // one (same caveat as the scheme unit tests).
                let effective_bound = outcome.parameter.map_or(outcome.time_bound, |p| {
                    outcome.time_bound.max(diameter + p as usize + 1)
                });
                if outcome.time > effective_bound {
                    violations.push(format!(
                        "{}: time {} exceeds bound {effective_bound}",
                        scheme.name(),
                        outcome.time
                    ));
                }
                match scheme.advice_bound(&inst) {
                    Ok(cap) if outcome.advice_bits() <= cap => {}
                    Ok(cap) => violations.push(format!(
                        "{}: {} advice bits exceed bound {cap}",
                        scheme.name(),
                        outcome.advice_bits()
                    )),
                    Err(e) => violations.push(format!("{}: advice_bound: {e}", scheme.name())),
                }
                // Exact theorem shapes.
                if outcome.phi != phi {
                    violations.push(format!("{}: outcome.phi != φ", scheme.name()));
                }
                if scheme.name() == "min_time" && outcome.time != phi {
                    violations.push(format!(
                        "min_time: time {} != φ = {phi} (Theorem 3.1)",
                        outcome.time
                    ));
                }
                if scheme.name() == "remark" && outcome.time != diameter + phi {
                    violations.push(format!(
                        "remark: time {} != D + φ = {}",
                        outcome.time,
                        diameter + phi
                    ));
                }
                // Equivariance: the renumbered copy must elect the
                // corresponding leader with identical time and advice bits.
                match scheme.elect(&inst_h) {
                    Ok(oh) => {
                        if oh.leader != perm[outcome.leader]
                            || oh.time != outcome.time
                            || oh.advice_bits() != outcome.advice_bits()
                        {
                            equivariant = false;
                            violations.push(format!(
                                "{}: renumbered copy elected {} in {} rounds / {} bits, \
                                 expected {} / {} / {}",
                                scheme.name(),
                                oh.leader,
                                oh.time,
                                oh.advice_bits(),
                                perm[outcome.leader],
                                outcome.time,
                                outcome.advice_bits()
                            ));
                        }
                    }
                    Err(e) => {
                        equivariant = false;
                        violations.push(format!(
                            "{}: failed on the renumbered copy: {e}",
                            scheme.name()
                        ));
                    }
                }
                schemes.push(SchemeRecord {
                    scheme: outcome.scheme.clone(),
                    advice_bits: outcome.advice_bits(),
                    time: outcome.time,
                    time_bound: outcome.time_bound,
                    effective_bound,
                });
            }
            // Session conformance: the whole suite must have cost exactly
            // one of each expensive analysis.
            let counts = inst.compute_counts();
            if counts.analysis != 1 || counts.advice > 1 || counts.levels > 1 {
                violations.push(format!("session caches recomputed: {counts:?}"));
            }
        }
    }

    // Fault dimensions ride on the same cached analysis and advice — they
    // run after the compute-count check so they cannot mask a cache miss
    // in the scheme suite (all their analysis accesses are memoized hits).
    let faults = fault_records(&inst, mix(perm_seed, 0xFA_0000), &mut violations);

    InstanceReport {
        name: name.to_string(),
        kind,
        n: g.num_nodes(),
        m: g.num_edges(),
        feasible: cached.feasible,
        phi: cached.election_index,
        diameter,
        distinct_views: cached.distinct_views,
        stable_depth: cached.stable_depth,
        quotient_key,
        quotient_size,
        fold,
        quotient_certified,
        schemes,
        equivariant,
        faults,
        violations,
    }
}

/// Runs the conformance harness over the full corpus of `spec` with up to
/// `threads` `std::thread::scope` workers (instances are independent; the
/// report order is the corpus order regardless of the thread count).
pub fn run_corpus(spec: &CorpusSpec, threads: usize) -> Vec<InstanceReport> {
    let instances = build_corpus(spec);
    let workers = threads.clamp(1, instances.len().max(1));

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<InstanceReport>> = (0..instances.len()).map(|_| None).collect();
    let slot_refs: Vec<std::sync::Mutex<&mut Option<InstanceReport>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(inst) = instances.get(i) else { break };
                let perm_seed = mix(spec.seed, 0xE9_0000 + i as u64);
                let report = check_graph(&inst.name, inst.kind, &inst.graph, perm_seed);
                **slot_refs[i].lock().expect("corpus worker panicked") = Some(report);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_graph::generators;

    #[test]
    fn certifies_a_feasible_staple() {
        let g = generators::lollipop(5, 4);
        let report = check_graph("lollipop(5,4)", "random", &g, 11);
        assert!(report.certified(), "{:?}", report.violations);
        assert!(report.feasible);
        assert_eq!(report.schemes.len(), 7);
        assert!(report.equivariant);
        assert_eq!(report.schemes[0].scheme, "min_time");
        assert_eq!(Some(report.schemes[0].time), report.phi);
        assert_eq!(report.faults.len(), 5, "five certified fault dimensions");
        assert!(report.quotient_certified);
        assert_eq!(report.quotient_size, report.n, "feasible => trivial base");
        assert_eq!(report.fold, 1);
        assert_eq!(report.quotient_key.len(), 16);
    }

    #[test]
    fn certifies_an_infeasible_symmetric_graph() {
        let g = generators::ring(6);
        let report = check_graph("ring(6)", "symmetric", &g, 3);
        assert!(report.certified(), "{:?}", report.violations);
        assert!(!report.feasible);
        assert!(report.schemes.is_empty());
        assert!(report.equivariant);
        assert_eq!(report.distinct_views, 1);
        assert!(report.quotient_certified);
        assert_eq!(report.quotient_size, 1, "ring collapses to one class");
        assert_eq!(report.fold, 6);
        assert!(report
            .faults
            .iter()
            .all(|f| f.observed == crate::faults::FaultClass::CorrectlyRefused));
    }

    #[test]
    fn mini_corpus_certifies_end_to_end() {
        // Debug-build smoke: a small cap keeps this fast; the full default
        // corpus is exercised in release by `report corpus` (CI smoke job).
        let spec = CorpusSpec { seed: 5, max_n: 32 };
        let reports = run_corpus(&spec, 4);
        let summary = Summary::of(&reports);
        assert_eq!(summary.violations, 0, "violations in mini corpus");
        assert!(summary.total >= 100, "got {}", summary.total);
        assert!(summary.feasible_certified >= 50);
        assert!(summary.infeasible_certified >= 20);
        assert!(reports.iter().all(|r| r.quotient_certified));
        assert!(
            summary.distinct_quotients > 10 && summary.distinct_quotients <= summary.total,
            "got {} distinct quotients",
            summary.distinct_quotients
        );
        // The symmetric families collapse: some keys must repeat.
        assert!(summary.distinct_quotients < summary.total);
    }

    #[test]
    fn parallel_and_sequential_runs_agree() {
        let spec = CorpusSpec { seed: 9, max_n: 20 };
        let seq = run_corpus(&spec, 1);
        let par = run_corpus(&spec, 4);
        assert_eq!(seq, par);
    }
}

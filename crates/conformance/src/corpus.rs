//! The seed-reproducible adversarial corpus.
//!
//! [`build_corpus`] enumerates several hundred named instances mixing every
//! generator class the workspace has, then filters by the size cap. All
//! pseudo-randomness is derived from [`CorpusSpec::seed`] through a
//! deterministic mixer, so a `(seed, max_n)` pair identifies the corpus
//! exactly — across runs, machines and thread counts.

use anet_families::{necklace, ring_of_cliques};
use anet_graph::lift::{self, VoltageEdge, VoltageGraph};
use anet_graph::{generators, Graph};

/// What to generate: the seed every pseudo-random choice derives from and
/// the node-count cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusSpec {
    /// Master seed; every instance's randomness is a pure function of it.
    pub seed: u64,
    /// Instances with more than `max_n` nodes are skipped.
    pub max_n: usize,
}

impl Default for CorpusSpec {
    /// The committed-artifact configuration (`BENCH_corpus.json` and the CI
    /// smoke job): seed 7, instances up to 600 nodes.
    fn default() -> Self {
        CorpusSpec {
            seed: 7,
            max_n: 600,
        }
    }
}

/// One named corpus instance.
pub struct CorpusInstance {
    /// Reproducible name encoding the generator and its parameters.
    pub name: String,
    /// Generator class: `lift`, `near_cover`, `phi_targeted`, `family`,
    /// `random` or `symmetric`.
    pub kind: &'static str,
    /// The graph.
    pub graph: Graph,
}

/// SplitMix64-style seed derivation: sub-generator `salt` of `seed`.
pub(crate) fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_mul(salt | 1)
        .wrapping_add(salt);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The simple base graphs the lift generators cover (trees are pointless
/// bases: a lift of an acyclic base is never connected).
fn lift_bases() -> Vec<(&'static str, Graph)> {
    vec![
        ("clique3", generators::clique(3)),
        ("clique4", generators::clique(4)),
        ("lollipop(4,2)", generators::lollipop(4, 2)),
        ("bipartite(2,3)", generators::complete_bipartite(2, 3)),
        ("ring5", generators::ring(5)),
    ]
}

/// A connected random lift of a *multigraph* base given by raw endpoint
/// pairs (self-loops and parallel edges allowed), retrying a few voltage
/// draws like [`lift::random_lift`] does for simple bases.
fn random_multigraph_lift(
    base_nodes: usize,
    endpoints: &[(usize, usize)],
    fold: usize,
    seed: u64,
) -> Option<Graph> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    for attempt in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(attempt));
        let vg = VoltageGraph {
            base_nodes,
            fold,
            edges: endpoints
                .iter()
                .map(|&(u, v)| VoltageEdge {
                    u,
                    v,
                    sigma: lift::random_voltage(fold, &mut rng),
                })
                .collect(),
        };
        if let Ok(g) = vg.lift() {
            return Some(g);
        }
    }
    None
}

/// Builds the full corpus for `spec`: every instance whose node count is at
/// most `spec.max_n`, in a fixed deterministic order.
pub fn build_corpus(spec: &CorpusSpec) -> Vec<CorpusInstance> {
    let mut out: Vec<CorpusInstance> = Vec::new();
    let mut push = |name: String, kind: &'static str, graph: Graph| {
        if graph.num_nodes() <= spec.max_n {
            out.push(CorpusInstance { name, kind, graph });
        }
    };

    // 1. Permutation-voltage lifts of simple bases: connected k-fold covers,
    //    infeasible by construction (every fiber is a view class).
    for (bi, (bname, base)) in lift_bases().iter().enumerate() {
        for k in [2usize, 3, 4] {
            for s in 0..3u64 {
                let seed = mix(spec.seed, 0x1000 + (bi as u64) * 64 + (k as u64) * 8 + s);
                if let Some(g) = lift::random_lift(base, k, seed) {
                    push(format!("lift({bname},k={k},s={s})"), "lift", g);
                }
            }
        }
    }

    // 2. Lifts of multigraph bases: a bouquet of two self-loops (4-regular
    //    circulant-like covers) and a theta graph of three parallel edges
    //    (cubic bipartite-like covers).
    let bouquet = [(0usize, 0usize), (0, 0)];
    for k in [3usize, 4, 5] {
        for s in 0..3u64 {
            let seed = mix(spec.seed, 0x2000 + (k as u64) * 8 + s);
            if let Some(g) = random_multigraph_lift(1, &bouquet, k, seed) {
                push(format!("lift(bouquet2,k={k},s={s})"), "lift", g);
            }
        }
    }
    let theta = [(0usize, 1usize), (0, 1), (0, 1)];
    for k in [2usize, 3, 4] {
        for s in 0..3u64 {
            let seed = mix(spec.seed, 0x3000 + (k as u64) * 8 + s);
            if let Some(g) = random_multigraph_lift(2, &theta, k, seed) {
                push(format!("lift(theta3,k={k},s={s})"), "lift", g);
            }
        }
    }

    // 3. Near-covers: the same lifts with one symmetry-breaking pendant
    //    defect — usually feasible, with φ growing with the distance to the
    //    defect.
    for (bi, (bname, base)) in lift_bases().iter().enumerate() {
        for k in [2usize, 3, 4] {
            for s in 0..3u64 {
                let seed = mix(spec.seed, 0x4000 + (bi as u64) * 64 + (k as u64) * 8 + s);
                if let Some(g) = lift::near_cover(base, k, seed) {
                    push(format!("near_cover({bname},k={k},s={s})"), "near_cover", g);
                }
            }
        }
    }

    // 4. φ-targeted ring gadgets: feasible instances spread across the φ
    //    axis (φ equals the target exactly; see the generator docs).
    for target in [1usize, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 20, 24, 28] {
        for s in 0..4u64 {
            let seed = mix(spec.seed, 0x5000 + (target as u64) * 8 + s);
            push(
                format!("phi_targeted({target},s={s})"),
                "phi_targeted",
                generators::phi_targeted(target, seed),
            );
        }
    }

    // 5. The paper's lower-bound families at small parameters.
    for (k, x) in [(3usize, 3usize), (4, 3), (5, 4), (8, 5), (12, 5)] {
        push(
            format!("ring_of_cliques(k={k},x={x})"),
            "family",
            ring_of_cliques::ring_of_cliques_base(k, x),
        );
    }
    for (k, x, phi) in [(2usize, 3usize, 2usize), (4, 3, 2), (4, 5, 3), (6, 4, 2)] {
        let params = necklace::NecklaceParams { k, x, phi };
        push(
            format!("necklace(k={k},x={x},phi={phi})"),
            "family",
            necklace::necklace_base(params),
        );
    }
    for (label, sizes) in [
        ("hairy_ring(1,2,3)", vec![1usize, 2, 3]),
        ("hairy_ring(0,1,0,2)", vec![0, 1, 0, 2]),
        ("hairy_ring(2,3,4,5,1)", vec![2, 3, 4, 5, 1]),
    ] {
        push(
            label.to_string(),
            "family",
            anet_families::hairy_ring(&sizes),
        );
    }
    for (x, t) in [(3usize, 0u64), (3, 1), (3, 2), (4, 0), (4, 5)] {
        push(
            format!("clique_f(x={x},t={t})"),
            "family",
            anet_families::clique_f(x, t),
        );
    }

    // 6. Random graphs: Erdős–Rényi-style, trees, and large sparse
    //    instances, all reseeded from the master seed.
    for n in [8usize, 12, 16, 24, 32, 48, 64] {
        for s in 0..8u64 {
            let seed = mix(spec.seed, 0x6000 + (n as u64) * 16 + s);
            push(
                format!("gnp(n={n},s={s})"),
                "random",
                generators::random_connected(n, 3.0 / n as f64, seed),
            );
        }
    }
    for n in [10usize, 20, 40, 60] {
        for s in 0..4u64 {
            let seed = mix(spec.seed, 0x7000 + (n as u64) * 16 + s);
            push(
                format!("tree(n={n},s={s})"),
                "random",
                generators::random_tree(n, seed),
            );
        }
    }
    for n in [100usize, 200, 400, 600] {
        for s in 0..3u64 {
            let seed = mix(spec.seed, 0x8000 + (n as u64) * 16 + s);
            if n <= spec.max_n {
                push(
                    format!("sparse(n={n},s={s})"),
                    "random",
                    generators::random_connected_sparse(n, n, seed),
                );
            }
        }
    }

    // 7. Symmetric topologies: adversarially infeasible inputs every scheme
    //    must refuse (plus the odd feasible path).
    for n in 4usize..=10 {
        push(format!("ring({n})"), "symmetric", generators::ring(n));
    }
    push("path(2)".into(), "symmetric", generators::path(2));
    push("hypercube(2)".into(), "symmetric", generators::hypercube(2));
    push("hypercube(3)".into(), "symmetric", generators::hypercube(3));
    push("torus(3,3)".into(), "symmetric", generators::torus(3, 3));
    push("torus(3,4)".into(), "symmetric", generators::torus(3, 4));
    push("clique(4)".into(), "symmetric", generators::clique(4));
    push("clique(6)".into(), "symmetric", generators::clique(6));
    push(
        "bipartite(2,2)".into(),
        "symmetric",
        generators::complete_bipartite(2, 2),
    );
    push(
        "bipartite(3,3)".into(),
        "symmetric",
        generators::complete_bipartite(3, 3),
    );
    push(
        "binary_tree(3)".into(),
        "symmetric",
        generators::binary_tree(3),
    );

    // 8. Structured feasible staples.
    for spine in 3usize..=8 {
        push(
            format!("caterpillar({spine})"),
            "random",
            generators::caterpillar(spine),
        );
    }
    for (c, t) in [(3usize, 1usize), (4, 3), (5, 5), (6, 8), (8, 4)] {
        push(
            format!("lollipop({c},{t})"),
            "random",
            generators::lollipop(c, t),
        );
    }
    for k in 2usize..=6 {
        push(format!("star({k})"), "random", generators::star(k));
    }
    for n in 3usize..=9 {
        push(format!("path({n})"), "random", generators::path(n));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_per_spec() {
        let spec = CorpusSpec { seed: 3, max_n: 40 };
        let a = build_corpus(&spec);
        let b = build_corpus(&spec);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.graph, y.graph);
        }
        // A different seed changes at least the random instances.
        let c = build_corpus(&CorpusSpec { seed: 4, max_n: 40 });
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.name != y.name || x.graph != y.graph));
    }

    #[test]
    fn corpus_respects_the_size_cap_and_names_are_unique() {
        let spec = CorpusSpec { seed: 7, max_n: 64 };
        let corpus = build_corpus(&spec);
        assert!(corpus.len() >= 150, "got {}", corpus.len());
        let mut names: Vec<&str> = corpus.iter().map(|i| i.name.as_str()).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "corpus names must be unique");
        for inst in &corpus {
            assert!(inst.graph.num_nodes() <= 64, "{}", inst.name);
        }
    }

    #[test]
    fn default_spec_covers_every_generator_class() {
        let corpus = build_corpus(&CorpusSpec::default());
        assert!(corpus.len() >= 250, "got {}", corpus.len());
        for kind in [
            "lift",
            "near_cover",
            "phi_targeted",
            "family",
            "random",
            "symmetric",
        ] {
            assert!(
                corpus.iter().filter(|i| i.kind == kind).count() >= 5,
                "kind {kind} is underrepresented"
            );
        }
    }
}

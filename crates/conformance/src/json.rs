//! Deterministic JSON emission for conformance and fault reports.
//!
//! Unlike the perf-sweep emitters of `anet-bench`, conformance records carry
//! **no wall-clock fields**: the JSON is a pure function of the corpus spec,
//! so re-running `report corpus` / `report faults` with the same
//! `--seed`/`--max-n` must reproduce `BENCH_corpus.json` /
//! `BENCH_faults.json` byte for byte (CI compares the outputs across two
//! thread counts and against the committed artifacts).

use std::io::Write as _;

use crate::faults::{FaultRecord, FaultReport, FaultSummary};
use crate::harness::{InstanceReport, Summary};

/// Serializes the reports as a JSON object with a summary header and one
/// record per instance.
pub fn to_json(reports: &[InstanceReport]) -> String {
    let s = Summary::of(reports);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "\"summary\": {{\"total\": {}, \"feasible_certified\": {}, \
         \"infeasible_certified\": {}, \"distinct_quotients\": {}, \
         \"violations\": {}}},\n",
        s.total, s.feasible_certified, s.infeasible_certified, s.distinct_quotients, s.violations
    ));
    out.push_str("\"instances\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let phi = r.phi.map_or("null".to_string(), |p| p.to_string());
        let schemes: Vec<String> = r
            .schemes
            .iter()
            .map(|sr| {
                format!(
                    "{{\"scheme\": \"{}\", \"advice_bits\": {}, \"time\": {}, \
                     \"time_bound\": {}, \"effective_bound\": {}}}",
                    escape(&sr.scheme),
                    sr.advice_bits,
                    sr.time,
                    sr.time_bound,
                    sr.effective_bound
                )
            })
            .collect();
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"kind\": \"{}\", \"n\": {}, \"m\": {}, \
             \"feasible\": {}, \"phi\": {}, \"diameter\": {}, \
             \"distinct_views\": {}, \"stable_depth\": {}, \
             \"quotient_key\": \"{}\", \"quotient_size\": {}, \"fold\": {}, \
             \"quotient_certified\": {}, \
             \"equivariant\": {}, \"violations\": {}, \"schemes\": [{}], \
             \"faults\": [{}]}}{}\n",
            escape(&r.name),
            r.kind,
            r.n,
            r.m,
            r.feasible,
            phi,
            r.diameter,
            r.distinct_views,
            r.stable_depth,
            escape(&r.quotient_key),
            r.quotient_size,
            r.fold,
            r.quotient_certified,
            r.equivariant,
            r.violations.len(),
            schemes.join(", "),
            fault_records_json(&r.faults),
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n}\n");
    out
}

/// Writes the reports as JSON to `path`.
pub fn emit(path: &std::path::Path, reports: &[InstanceReport]) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(to_json(reports).as_bytes())
}

/// Serializes the fault records of one instance as a JSON array body.
fn fault_records_json(records: &[FaultRecord]) -> String {
    let parts: Vec<String> = records
        .iter()
        .map(|f| {
            let time = f.time.map_or("null".to_string(), |t| t.to_string());
            let messages = f.messages.map_or("null".to_string(), |m| m.to_string());
            format!(
                "{{\"dimension\": \"{}\", \"model\": \"{}\", \
                 \"expected\": \"{}\", \"observed\": \"{}\", \
                 \"time\": {time}, \"messages\": {messages}}}",
                f.dimension,
                f.model,
                f.expected.as_str(),
                f.observed.as_str()
            )
        })
        .collect();
    parts.join(", ")
}

/// Serializes the fault reports as a JSON object with a summary header and
/// one record per instance (the `report faults` artifact).
pub fn faults_to_json(reports: &[FaultReport]) -> String {
    let s = FaultSummary::of(reports);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "\"summary\": {{\"total\": {}, \"certified\": {}, \
         \"outcome_identical\": {}, \"degraded_but_correct\": {}, \
         \"correctly_refused\": {}, \"violations\": {}}},\n",
        s.total,
        s.certified,
        s.outcome_identical,
        s.degraded_but_correct,
        s.correctly_refused,
        s.violations
    ));
    out.push_str("\"instances\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let phi = r.phi.map_or("null".to_string(), |p| p.to_string());
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"kind\": \"{}\", \"n\": {}, \"m\": {}, \
             \"feasible\": {}, \"phi\": {}, \"violations\": {}, \
             \"faults\": [{}]}}{}\n",
            escape(&r.name),
            r.kind,
            r.n,
            r.m,
            r.feasible,
            phi,
            r.violations.len(),
            fault_records_json(&r.records),
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n}\n");
    out
}

/// Writes the fault reports as JSON to `path`.
pub fn emit_faults(path: &std::path::Path, reports: &[FaultReport]) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(faults_to_json(reports).as_bytes())
}

/// Minimal JSON string escaping (names are ASCII, but quotes and
/// backslashes must never corrupt the output).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultClass;
    use crate::harness::SchemeRecord;

    fn sample() -> InstanceReport {
        InstanceReport {
            name: "lift(clique\"3,s=0)".into(),
            kind: "lift",
            n: 6,
            m: 9,
            feasible: false,
            phi: None,
            diameter: 2,
            distinct_views: 3,
            stable_depth: 2,
            quotient_key: "00deadbeef00f00d".into(),
            quotient_size: 3,
            fold: 2,
            quotient_certified: true,
            schemes: vec![],
            equivariant: true,
            faults: vec![],
            violations: vec![],
        }
    }

    fn sample_fault_record() -> FaultRecord {
        FaultRecord {
            dimension: "crash_stop",
            model: "restartable",
            expected: FaultClass::CorrectlyRefused,
            observed: FaultClass::CorrectlyRefused,
            time: None,
            messages: None,
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let mut feasible = sample();
        feasible.name = "lollipop(4,2)".into();
        feasible.feasible = true;
        feasible.phi = Some(2);
        feasible.schemes = vec![SchemeRecord {
            scheme: "min_time".into(),
            advice_bits: 120,
            time: 2,
            time_bound: 2,
            effective_bound: 2,
        }];
        feasible.faults = vec![
            FaultRecord {
                dimension: "phase_skew",
                model: "raw",
                expected: FaultClass::OutcomeIdentical,
                observed: FaultClass::OutcomeIdentical,
                time: Some(2),
                messages: Some(36),
            },
            sample_fault_record(),
        ];
        let json = to_json(&[sample(), feasible]);
        assert!(json.starts_with("{\n") && json.ends_with("}\n"));
        assert!(json.contains("\"summary\": {\"total\": 2"));
        assert!(json.contains("\"distinct_quotients\": 1"));
        assert!(json.contains(
            "\"quotient_key\": \"00deadbeef00f00d\", \"quotient_size\": 3, \
             \"fold\": 2, \"quotient_certified\": true"
        ));
        assert!(json.contains("\"phi\": null"));
        assert!(json.contains("\"phi\": 2"));
        assert!(json.contains("lift(clique\\\"3,s=0)"));
        assert!(json.contains("\"scheme\": \"min_time\""));
        assert!(json.contains("\"faults\": []"));
        assert!(json.contains(
            "{\"dimension\": \"phase_skew\", \"model\": \"raw\", \
             \"expected\": \"outcome_identical\", \
             \"observed\": \"outcome_identical\", \"time\": 2, \
             \"messages\": 36}"
        ));
    }

    #[test]
    fn faults_json_shape_is_stable() {
        let report = FaultReport {
            name: "necklace(3,\"x\")".into(),
            kind: "family",
            n: 9,
            m: 12,
            feasible: true,
            phi: Some(3),
            records: vec![sample_fault_record()],
            violations: vec![],
        };
        let json = faults_to_json(&[report]);
        assert!(json.starts_with("{\n") && json.ends_with("}\n"));
        assert!(json.contains("\"summary\": {\"total\": 1, \"certified\": 1"));
        assert!(json.contains("\"correctly_refused\": 1"));
        assert!(json.contains("necklace(3,\\\"x\\\")"));
        assert!(json.contains("\"observed\": \"correctly_refused\""));
        assert!(json.contains("\"time\": null, \"messages\": null"));
    }

    #[test]
    fn json_is_deterministic() {
        let reports = vec![sample()];
        assert_eq!(to_json(&reports), to_json(&reports));
    }
}

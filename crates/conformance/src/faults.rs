//! The `survivors` analysis: certified behaviour under adversity.
//!
//! For every corpus instance, five adversarial **fault dimensions** rerun
//! the minimum-time election through the fault-injecting engine
//! ([`anet_sim::AdvRunner`]) with the `COM` exchange carried by the
//! matching [`ExecutionModel`], and classify the outcome:
//!
//! | dimension | adversary | model | expected class |
//! |---|---|---|---|
//! | `phase_skew` | permuted per-round phase order | raw | outcome-identical |
//! | `drop_retransmit` | bounded message drops | reliable links | degraded-but-correct |
//! | `edge_churn` | bounded edge outages | reliable links | degraded-but-correct |
//! | `crash_recover` | crash + restart-from-init | restartable | degraded-but-correct |
//! | `crash_stop` | crash, never returns | restartable | correctly-refused |
//!
//! *Outcome-identical* means byte-equal outputs, time and message
//! statistics against the clean run; *degraded-but-correct* means the same
//! leader and the same per-node outputs, merely later and chattier;
//! *correctly-refused* means the run fails loudly
//! ([`ElectionError::NodeDidNotHalt`]) instead of electing anyone. A
//! dimension observing a class other than (or worse than) its expected one
//! is a recorded violation. On infeasible instances every dimension must
//! refuse — advice that cannot exist can certainly not survive faults.
//!
//! All fault decisions derive from the corpus seed through the same mixer
//! the corpus uses, so fault reports are byte-deterministic per
//! `(seed, max_n)` — across runs, machines and thread counts (the runs
//! here are sequential per instance; corpus-level workers only distribute
//! whole instances).

use std::sync::atomic::{AtomicUsize, Ordering};

use anet_election::{ElectionError, ExecutionModel, Instance};
use anet_graph::Graph;
use anet_sim::{CrashEvent, CrashSemantics, FaultPlan};

use crate::corpus::{build_corpus, mix, CorpusSpec};

/// Drop/churn probability numerator (out of 256) the lossy dimensions use.
const FAULT_RATE: u8 = 120;
/// Forced-delivery window of the lossy dimensions (bounds every burst).
const FAULT_WINDOW: usize = 4;

/// How an adversarial run relates to the clean one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Byte-identical outputs, election time and message statistics.
    OutcomeIdentical,
    /// Same leader and same per-node outputs; more rounds and/or messages.
    DegradedButCorrect,
    /// The run failed loudly instead of electing anyone.
    CorrectlyRefused,
}

impl FaultClass {
    /// The snake_case JSON name of the class.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultClass::OutcomeIdentical => "outcome_identical",
            FaultClass::DegradedButCorrect => "degraded_but_correct",
            FaultClass::CorrectlyRefused => "correctly_refused",
        }
    }
}

/// One certified fault dimension of one instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Dimension name (`phase_skew`, `drop_retransmit`, `edge_churn`,
    /// `crash_recover`, `crash_stop`).
    pub dimension: &'static str,
    /// Execution model carrying the exchange (`raw`, `reliable_links`,
    /// `restartable`).
    pub model: &'static str,
    /// The class certification expects on this instance.
    pub expected: FaultClass,
    /// The class the run actually exhibited.
    pub observed: FaultClass,
    /// Physical rounds until every node halted, when the run completed.
    pub time: Option<usize>,
    /// Messages delivered, when the run completed.
    pub messages: Option<usize>,
}

/// The fault-dimension report of one corpus instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// Instance name (from the corpus).
    pub name: String,
    /// Generator class (from the corpus).
    pub kind: &'static str,
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Whether the instance is feasible.
    pub feasible: bool,
    /// The election index, when feasible.
    pub phi: Option<usize>,
    /// One record per fault dimension.
    pub records: Vec<FaultRecord>,
    /// Human-readable descriptions of every violated check (empty =
    /// certified).
    pub violations: Vec<String>,
}

impl FaultReport {
    /// Whether every dimension behaved as certified.
    pub fn certified(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Aggregate counts over a fault-corpus run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSummary {
    /// Instances checked.
    pub total: usize,
    /// Instances with zero violations.
    pub certified: usize,
    /// Fault dimensions observed outcome-identical.
    pub outcome_identical: usize,
    /// Fault dimensions observed degraded-but-correct.
    pub degraded_but_correct: usize,
    /// Fault dimensions observed correctly-refused.
    pub correctly_refused: usize,
    /// Total violation count across all instances.
    pub violations: usize,
}

impl FaultSummary {
    /// Folds a slice of reports into totals.
    pub fn of(reports: &[FaultReport]) -> FaultSummary {
        let mut s = FaultSummary {
            total: reports.len(),
            ..FaultSummary::default()
        };
        for r in reports {
            s.violations += r.violations.len();
            if r.certified() {
                s.certified += 1;
            }
            for rec in &r.records {
                match rec.observed {
                    FaultClass::OutcomeIdentical => s.outcome_identical += 1,
                    FaultClass::DegradedButCorrect => s.degraded_but_correct += 1,
                    FaultClass::CorrectlyRefused => s.correctly_refused += 1,
                }
            }
        }
        s
    }
}

/// The JSON name of an execution model.
fn model_name(model: ExecutionModel) -> &'static str {
    match model {
        ExecutionModel::Raw => "raw",
        ExecutionModel::ReliableLinks => "reliable_links",
        ExecutionModel::Restartable => "restartable",
    }
}

/// The five (dimension, model, plan, expected class) tuples for an
/// `n`-node instance, all randomness derived from `seed`.
fn dimensions(
    seed: u64,
    n: usize,
    phi: Option<usize>,
) -> Vec<(&'static str, ExecutionModel, FaultPlan, FaultClass)> {
    // Crash a seed-chosen node early enough that it cannot have halted yet
    // (the minimum-time algorithm halts no earlier than round φ - 1), so a
    // crash-stop run provably cannot complete.
    let crash_node = (mix(seed, 0xC9A5) % n.max(1) as u64) as usize;
    let crash_at = match phi {
        Some(p) if p >= 2 => 1,
        _ => 0,
    };
    vec![
        (
            "phase_skew",
            ExecutionModel::Raw,
            FaultPlan::phase_skew(mix(seed, 1)),
            FaultClass::OutcomeIdentical,
        ),
        (
            "drop_retransmit",
            ExecutionModel::ReliableLinks,
            FaultPlan::message_drops(mix(seed, 2), FAULT_RATE, FAULT_WINDOW),
            FaultClass::DegradedButCorrect,
        ),
        (
            "edge_churn",
            ExecutionModel::ReliableLinks,
            FaultPlan::edge_churn(mix(seed, 3), FAULT_RATE, FAULT_WINDOW),
            FaultClass::DegradedButCorrect,
        ),
        (
            "crash_recover",
            ExecutionModel::Restartable,
            FaultPlan::crashing(
                mix(seed, 4),
                CrashSemantics::RestartFromInit,
                vec![CrashEvent {
                    node: crash_node,
                    at: crash_at,
                    recover_at: Some(crash_at + 2),
                }],
            ),
            FaultClass::DegradedButCorrect,
        ),
        (
            "crash_stop",
            ExecutionModel::Restartable,
            FaultPlan::crashing(
                mix(seed, 5),
                CrashSemantics::Stop,
                vec![CrashEvent {
                    node: crash_node,
                    at: crash_at,
                    recover_at: None,
                }],
            ),
            FaultClass::CorrectlyRefused,
        ),
    ]
}

/// Runs every fault dimension of `inst` (all randomness derived from
/// `seed`), classifying each run against the clean baseline and appending
/// any certification failure to `violations`.
pub fn fault_records(inst: &Instance, seed: u64, violations: &mut Vec<String>) -> Vec<FaultRecord> {
    let g = inst.graph();
    let feasible = inst.is_feasible();
    let phi = inst.phi().ok();

    // The clean baseline every completing adversarial run is compared to.
    let clean = if feasible {
        match inst.elect_under(&FaultPlan::none(), ExecutionModel::Raw, 1) {
            Ok(c) => Some(c),
            Err(e) => {
                violations.push(format!("faults: clean baseline run failed: {e}"));
                None
            }
        }
    } else {
        None
    };

    dimensions(seed, g.num_nodes(), phi)
        .into_iter()
        .map(|(dimension, model, plan, mut expected)| {
            if !feasible {
                // No advice exists; every model must refuse.
                expected = FaultClass::CorrectlyRefused;
            }
            let (observed, time, messages) = match inst.elect_under(&plan, model, 1) {
                Ok(out) => {
                    let observed = match &clean {
                        Some(c) if out.leader == c.leader && out.outputs == c.outputs => {
                            if out.time == c.time && out.stats == c.stats {
                                FaultClass::OutcomeIdentical
                            } else {
                                FaultClass::DegradedButCorrect
                            }
                        }
                        Some(c) => {
                            violations.push(format!(
                                "{dimension}: completed with a different outcome \
                                 (leader {} vs clean {})",
                                out.leader, c.leader
                            ));
                            FaultClass::DegradedButCorrect
                        }
                        None => {
                            violations
                                .push(format!("{dimension}: completed without a clean baseline"));
                            FaultClass::DegradedButCorrect
                        }
                    };
                    (observed, Some(out.time), Some(out.stats.messages))
                }
                Err(ElectionError::NodeDidNotHalt { .. }) | Err(ElectionError::Infeasible) => {
                    (FaultClass::CorrectlyRefused, None, None)
                }
                Err(e) => {
                    violations.push(format!("{dimension}: failed unexpectedly: {e}"));
                    (FaultClass::CorrectlyRefused, None, None)
                }
            };
            // A dimension may do *better* than expected (a lossy adversary
            // that happened to change nothing) but never worse.
            let acceptable = match expected {
                FaultClass::OutcomeIdentical => observed == FaultClass::OutcomeIdentical,
                FaultClass::DegradedButCorrect => observed != FaultClass::CorrectlyRefused,
                FaultClass::CorrectlyRefused => observed == FaultClass::CorrectlyRefused,
            };
            if !acceptable {
                violations.push(format!(
                    "{dimension}: observed {}, expected {}",
                    observed.as_str(),
                    expected.as_str()
                ));
            }
            FaultRecord {
                dimension,
                model: model_name(model),
                expected,
                observed,
                time,
                messages,
            }
        })
        .collect()
}

/// Certifies the fault dimensions of one graph (a fresh [`Instance`];
/// `seed` drives every fault decision).
pub fn check_faults(name: &str, kind: &'static str, g: &Graph, seed: u64) -> FaultReport {
    let inst = Instance::new(g);
    let mut violations = Vec::new();
    let records = fault_records(&inst, seed, &mut violations);
    let feasibility = inst.feasibility();
    FaultReport {
        name: name.to_string(),
        kind,
        n: g.num_nodes(),
        m: g.num_edges(),
        feasible: feasibility.feasible,
        phi: feasibility.election_index,
        records,
        violations,
    }
}

/// Runs the fault certification over the full corpus of `spec` with up to
/// `threads` `std::thread::scope` workers (instances are independent; the
/// report order is the corpus order regardless of the thread count).
pub fn run_faults_corpus(spec: &CorpusSpec, threads: usize) -> Vec<FaultReport> {
    let instances = build_corpus(spec);
    let workers = threads.clamp(1, instances.len().max(1));

    let next = AtomicUsize::new(0);
    let slots: parking_lot::Mutex<Vec<Option<FaultReport>>> =
        parking_lot::Mutex::new((0..instances.len()).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(inst) = instances.get(i) else { break };
                let seed = mix(spec.seed, 0xFA_0000 + i as u64);
                let report = check_faults(&inst.name, inst.kind, &inst.graph, seed);
                slots.lock()[i] = Some(report);
            });
        }
    });
    let reports: Vec<FaultReport> = slots.into_inner().into_iter().flatten().collect();
    assert_eq!(
        reports.len(),
        instances.len(),
        "every corpus instance produces a fault report"
    );
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_graph::generators;

    #[test]
    fn feasible_staple_certifies_all_five_dimensions() {
        let g = generators::lollipop(5, 4);
        let report = check_faults("lollipop(5,4)", "random", &g, 17);
        assert!(report.certified(), "{:?}", report.violations);
        assert_eq!(report.records.len(), 5);
        let by_dim = |d: &str| {
            report
                .records
                .iter()
                .find(|r| r.dimension == d)
                .map(|r| r.observed)
        };
        assert_eq!(by_dim("phase_skew"), Some(FaultClass::OutcomeIdentical));
        assert_eq!(
            by_dim("drop_retransmit"),
            Some(FaultClass::DegradedButCorrect)
        );
        assert_eq!(by_dim("edge_churn"), Some(FaultClass::DegradedButCorrect));
        assert_eq!(
            by_dim("crash_recover"),
            Some(FaultClass::DegradedButCorrect)
        );
        assert_eq!(by_dim("crash_stop"), Some(FaultClass::CorrectlyRefused));
    }

    #[test]
    fn infeasible_instances_refuse_every_dimension() {
        let g = generators::ring(6);
        let report = check_faults("ring(6)", "symmetric", &g, 3);
        assert!(report.certified(), "{:?}", report.violations);
        assert!(!report.feasible);
        assert_eq!(report.records.len(), 5);
        for rec in &report.records {
            assert_eq!(
                rec.observed,
                FaultClass::CorrectlyRefused,
                "{}",
                rec.dimension
            );
            assert_eq!(
                rec.expected,
                FaultClass::CorrectlyRefused,
                "{}",
                rec.dimension
            );
        }
    }

    #[test]
    fn degraded_dimensions_cost_strictly_more_time() {
        let g = generators::caterpillar(5);
        let report = check_faults("caterpillar(5)", "random", &g, 23);
        assert!(report.certified(), "{:?}", report.violations);
        let skew = &report.records[0];
        for rec in &report.records {
            if rec.observed == FaultClass::DegradedButCorrect {
                assert!(
                    rec.time > skew.time,
                    "{}: {:?} vs clean {:?}",
                    rec.dimension,
                    rec.time,
                    skew.time
                );
            }
        }
    }

    #[test]
    fn fault_corpus_is_deterministic_across_thread_counts() {
        let spec = CorpusSpec { seed: 9, max_n: 16 };
        let seq = run_faults_corpus(&spec, 1);
        let par = run_faults_corpus(&spec, 4);
        assert_eq!(seq, par);
        assert!(!seq.is_empty());
        let summary = FaultSummary::of(&seq);
        assert_eq!(summary.violations, 0, "{seq:?}");
        assert_eq!(summary.certified, summary.total);
    }
}

//! # anet-conformance
//!
//! Adversarial corpus generation and differential conformance checking for
//! the election pipeline.
//!
//! The paper's guarantees — a verified leader, `time == φ` for the
//! minimum-time scheme, the Theorem 3.1/4.1 time and advice bounds, and
//! invariance under simulator node renumbering — are claims about
//! *arbitrary* port-labeled graphs, not about the handful of workloads the
//! benchmarks use. This crate turns them into a machine-checked contract:
//!
//! * [`corpus`] — a seed-reproducible **corpus driver** enumerating hundreds
//!   of instances across permutation-voltage lifts
//!   ([`anet_graph::lift`]: infeasible covers and feasible near-covers with
//!   controlled view quotients), φ-targeted ring gadgets
//!   ([`anet_graph::generators::phi_targeted`]), the lower-bound families of
//!   `anet-families`, random graphs/trees and symmetric infeasible
//!   topologies. The same `(seed, max_n)` pair always produces the same
//!   corpus, bit for bit.
//! * [`harness`] — the **differential conformance harness**: every
//!   [`AdviceScheme`](anet_election::AdviceScheme) of
//!   [`scheme_suite`](anet_election::scheme_suite) runs on every corpus
//!   instance off one cached [`Instance`](anet_election::Instance),
//!   re-certified with [`verify_election`](anet_election::verify_election),
//!   checked against its theorem `time_bound`/`advice_bound`, and asserted
//!   **equivariant**: a node-renumbered isomorphic copy must elect the
//!   corresponding leader with identical time and advice bits. Infeasible
//!   instances must be refused by every scheme, and the cached analysis must
//!   agree with the free view-class analysis.
//! * [`faults`] — the **survivors analysis**: every instance re-elected
//!   through the fault-injecting engine of `anet_sim`
//!   ([`Instance::elect_under`](anet_election::Instance::elect_under))
//!   under five adversarial dimensions (phase skew, message drops, edge
//!   churn, crash/recovery, crash-stop), each certified as
//!   outcome-identical, degraded-but-correct or correctly-refused.
//! * [`json`] — deterministic JSON emission (`BENCH_corpus.json` and
//!   `BENCH_faults.json` at the repository root; no wall-clock fields, so
//!   re-runs with the same seed are byte-identical).
//!
//! The `report corpus` and `report faults` subcommands of `anet-bench`
//! drive all of this from the command line:
//!
//! ```text
//! cargo run --release -p anet-bench --bin report -- corpus \
//!     --seed 7 --max-n 600 --threads 4 --json BENCH_corpus.json
//! cargo run --release -p anet-bench --bin report -- faults \
//!     --seed 7 --max-n 600 --threads 4 --json BENCH_faults.json
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod faults;
pub mod harness;
pub mod json;

pub use corpus::{build_corpus, CorpusInstance, CorpusSpec};
pub use faults::{
    check_faults, fault_records, run_faults_corpus, FaultClass, FaultRecord, FaultReport,
    FaultSummary,
};
pub use harness::{check_graph, run_corpus, InstanceReport, SchemeRecord, Summary};

//! # anonymous-election
//!
//! Umbrella crate for the reproduction of *Impact of Knowledge on Election
//! Time in Anonymous Networks* (Dieudonné & Pelc, SPAA 2017).
//!
//! It re-exports the workspace crates under stable module names so that
//! examples, integration tests and downstream users can depend on a single
//! package:
//!
//! * [`graph`] — port-labeled anonymous graphs, generators and algorithms,
//! * [`views`] — (augmented) truncated views and the election index,
//! * [`sim`] — the synchronous LOCAL-model simulator,
//! * [`advice`] — bit strings and the paper's self-delimiting encodings,
//! * [`election`] — the election algorithms with advice (the paper's
//!   contribution),
//! * [`families`] — every lower-bound graph family used in the paper,
//! * [`conformance`] — the adversarial corpus generator and differential
//!   conformance harness (`report corpus`),
//! * [`analysis`] — the workspace static-analysis pass (`report lint`):
//!   determinism, panic-hygiene and doc-integrity lints over this source
//!   tree itself,
//! * [`service`] — election as a service (`report serve`): an NDJSON
//!   daemon answering election jobs from a warm-`Instance` session cache
//!   keyed by canonical graph encoding, plus its deterministic load
//!   generator (`report loadgen`).
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! full system inventory.

#![forbid(unsafe_code)]

pub use anet_advice as advice;
pub use anet_analysis as analysis;
pub use anet_conformance as conformance;
pub use anet_election as election;
pub use anet_families as families;
pub use anet_graph as graph;
pub use anet_service as service;
pub use anet_sim as sim;
pub use anet_views as views;

/// Convenience prelude re-exporting the most commonly used items.
pub mod prelude {
    pub use anet_advice::BitString;
    pub use anet_election::{
        compute_advice, elect_all, generic_elect_all, scheme_suite, verify_election, AdviceScheme,
        ElectionOutcome, Generic, Instance, MilestoneScheme, MinTime, Outcome, Remark,
    };
    pub use anet_graph::{Graph, GraphBuilder, NodeId, Port, PortPath};
    pub use anet_views::{election_index, is_feasible, AugmentedView};
}

//! Token-ring recovery: the motivating scenario of the leader-election
//! problem (Le Lann 1977, cited in the paper's introduction).
//!
//! ```text
//! cargo run --example token_ring_recovery
//! ```
//!
//! In a local-area token ring, exactly one station may initiate communication
//! (the owner of a circulating token). When the token is lost, a leader must
//! be elected as the new owner — but the stations are anonymous. A plain ring
//! is perfectly symmetric, so election is *impossible*; a realistic ring whose
//! stations carry different numbers of attached devices ("hairy ring") is
//! feasible, and the election machinery of the paper applies.
//!
//! This example goes one step further than the paper's fault-free model: the
//! recovery election itself is faulty. A station crashes mid-election and
//! comes back from a cold boot (its advice survives on stable storage), and
//! the restartable execution model re-runs the election under it — re-electing
//! the *same* token owner, merely a few rounds later.

use anonymous_election::election::{elect_all, ElectionError, ExecutionModel, Instance};
use anonymous_election::families::hairy_ring;
use anonymous_election::graph::generators;
use anonymous_election::sim::{CrashEvent, CrashSemantics, FaultPlan};
use anonymous_election::views::{election_index, is_feasible};

fn main() {
    // A plain 8-station token ring: every station looks exactly like every
    // other, no deterministic algorithm can break the tie.
    let plain = generators::ring(8);
    println!("plain ring feasible?     {}", is_feasible(&plain));
    match elect_all(&plain) {
        Err(ElectionError::Infeasible) => {
            println!("  -> election on the plain ring is impossible (as the theory predicts)")
        }
        other => println!("  -> unexpected outcome: {other:?}"),
    }

    // The same ring, but station i has a different number of attached
    // workstations — the asymmetry every real deployment has.
    let devices = [3usize, 1, 0, 2, 0, 1, 4, 0];
    let ring = hairy_ring(&devices);
    let phi = election_index(&ring).expect("the hairy ring is feasible");
    println!(
        "\nhairy ring: {} nodes, election index φ = {phi}",
        ring.num_nodes()
    );

    let outcome = elect_all(&ring).expect("election succeeds");
    println!(
        "new token owner: node {} (elected in {} round(s) with {} advice bits)",
        outcome.leader, outcome.time, outcome.advice_bits
    );
    println!("every station now holds a simple path of port numbers leading to the token owner;");
    println!(
        "the longest such path has {} hops.",
        outcome.outputs.iter().map(|p| p.len()).max().unwrap()
    );

    // Now the token is lost AGAIN — and this time the recovery election is
    // itself unlucky: station 1 crashes in the first round and reboots two
    // rounds later with nothing but its stable storage (the advice). Under
    // the restartable execution model the ring detects the restart, resets
    // deterministically, and re-elects.
    let crash = FaultPlan::crashing(
        42,
        CrashSemantics::RestartFromInit,
        vec![CrashEvent {
            node: 1,
            at: 1,
            recover_at: Some(3),
        }],
    );
    let inst = Instance::new(&ring);
    let recovered = inst
        .elect_under(&crash, ExecutionModel::Restartable, 1)
        .expect("the restartable model absorbs a crash-and-reboot");
    println!(
        "\nstation 1 crashed at round 1 and rebooted at round 3 — the ring re-elected\n\
         node {} (the same owner) in {} round(s), {} messages instead of {}.",
        recovered.leader, recovered.time, recovered.stats.messages, outcome.stats.messages
    );
    assert_eq!(
        recovered.leader, outcome.leader,
        "a faulty re-election must agree with the clean one"
    );
    assert_eq!(recovered.outputs, outcome.outputs);
    assert!(recovered.time > outcome.time);

    // A station that crashes and never comes back is a different story: no
    // election can finish without it, and the machinery refuses loudly
    // rather than crowning a wrong owner.
    let dead = FaultPlan::crashing(
        42,
        CrashSemantics::Stop,
        vec![CrashEvent {
            node: 1,
            at: 1,
            recover_at: None,
        }],
    );
    match inst.elect_under(&dead, ExecutionModel::Restartable, 1) {
        Err(ElectionError::NodeDidNotHalt { .. }) => {
            println!("\nwith station 1 permanently dead the election refuses (no wrong owner).")
        }
        other => println!("\nunexpected outcome under crash-stop: {other:?}"),
    }
}

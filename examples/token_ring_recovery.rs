//! Token-ring recovery: the motivating scenario of the leader-election
//! problem (Le Lann 1977, cited in the paper's introduction).
//!
//! ```text
//! cargo run --example token_ring_recovery
//! ```
//!
//! In a local-area token ring, exactly one station may initiate communication
//! (the owner of a circulating token). When the token is lost, a leader must
//! be elected as the new owner — but the stations are anonymous. A plain ring
//! is perfectly symmetric, so election is *impossible*; a realistic ring whose
//! stations carry different numbers of attached devices ("hairy ring") is
//! feasible, and the election machinery of the paper applies.

use anonymous_election::election::{elect_all, ElectionError};
use anonymous_election::families::hairy_ring;
use anonymous_election::graph::generators;
use anonymous_election::views::{election_index, is_feasible};

fn main() {
    // A plain 8-station token ring: every station looks exactly like every
    // other, no deterministic algorithm can break the tie.
    let plain = generators::ring(8);
    println!("plain ring feasible?     {}", is_feasible(&plain));
    match elect_all(&plain) {
        Err(ElectionError::Infeasible) => {
            println!("  -> election on the plain ring is impossible (as the theory predicts)")
        }
        other => println!("  -> unexpected outcome: {other:?}"),
    }

    // The same ring, but station i has a different number of attached
    // workstations — the asymmetry every real deployment has.
    let devices = [3usize, 1, 0, 2, 0, 1, 4, 0];
    let ring = hairy_ring(&devices);
    let phi = election_index(&ring).expect("the hairy ring is feasible");
    println!(
        "\nhairy ring: {} nodes, election index φ = {phi}",
        ring.num_nodes()
    );

    let outcome = elect_all(&ring).expect("election succeeds");
    println!(
        "new token owner: node {} (elected in {} round(s) with {} advice bits)",
        outcome.leader, outcome.time, outcome.advice_bits
    );
    println!("every station now holds a simple path of port numbers leading to the token owner;");
    println!(
        "the longest such path has {} hops.",
        outcome.outputs.iter().map(|p| p.len()).max().unwrap()
    );
}

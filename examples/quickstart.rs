//! Quickstart: elect a leader in an anonymous network in minimum time.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The example builds a small feasible anonymous network, lets the oracle
//! compute the `O(n log n)`-bit advice of Dieudonné & Pelc, runs the `Elect`
//! node algorithm on every node through the LOCAL-model simulator, and prints
//! the outcome.

use anonymous_election::election::{compute_advice, elect_all};
use anonymous_election::graph::{algo, generators};
use anonymous_election::views::election_index;

fn main() {
    // A "lollipop": a clique of 6 machines with a chain of 4 relays hanging
    // off it. Nodes are anonymous; only local port numbers exist.
    let g = generators::lollipop(6, 4);
    println!(
        "network: {} nodes, {} edges, diameter {}",
        g.num_nodes(),
        g.num_edges(),
        algo::diameter(&g)
    );

    // Is leader election possible at all, and how fast can it be?
    let phi = election_index(&g).expect("this network is feasible");
    println!("election index φ = {phi} (minimum possible election time)");

    // The oracle (who knows the whole network) prepares the advice.
    let advice = compute_advice(&g).expect("feasible network");
    println!(
        "advice: {} bits (≈ {:.2} · n log n)",
        advice.size_bits(),
        advice.size_bits() as f64 / (g.num_nodes() as f64 * (g.num_nodes() as f64).log2())
    );

    // Every node receives the same advice and runs Elect for φ rounds.
    let outcome = elect_all(&g).expect("election succeeds");
    println!(
        "elected leader: node {} in {} round(s)",
        outcome.leader, outcome.time
    );
    for (v, path) in outcome.outputs.iter().enumerate().take(5) {
        println!(
            "  node {v} outputs port sequence {:?} (a simple path of {} hop(s) to the leader)",
            path.to_flat(),
            path.len()
        );
    }
    assert_eq!(outcome.time, phi);
}

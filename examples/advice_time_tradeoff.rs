//! The advice/time trade-off on a single network: how much a priori knowledge
//! buys how much speed.
//!
//! ```text
//! cargo run --example advice_time_tradeoff
//! ```
//!
//! For one feasible network the example prints the whole spectrum studied in
//! the paper: minimum-time election with `O(n log n)`-bit advice (Theorem
//! 3.1), then the four large-time milestones of Theorem 4.1 with advice
//! shrinking from `O(log φ)` down to `O(log log* φ)`.

use anonymous_election::election::milestones::{election_milestone, Milestone};
use anonymous_election::election::{compute_advice, elect_all};
use anonymous_election::graph::{algo, generators};
use anonymous_election::views::election_index;

fn main() {
    let g = generators::random_connected(40, 0.08, 2024);
    let phi = election_index(&g).expect("feasible");
    let d = algo::diameter(&g);
    println!(
        "network: n = {}, diameter D = {d}, election index φ = {phi}\n",
        g.num_nodes()
    );
    println!(
        "{:<28} {:>12} {:>10} {:>14}",
        "algorithm", "advice(bit)", "time", "time bound"
    );

    // The fast end of the spectrum: time exactly φ, advice Θ~(n).
    let advice = compute_advice(&g).unwrap();
    let fast = elect_all(&g).unwrap();
    println!(
        "{:<28} {:>12} {:>10} {:>14}",
        "Elect (Theorem 3.1)",
        advice.size_bits(),
        fast.time,
        format!("φ = {phi}")
    );

    // The slow end: the four milestones of Theorem 4.1 with c = 2.
    for m in Milestone::ALL {
        let r = election_milestone(&g, m, 2).unwrap();
        println!(
            "{:<28} {:>12} {:>10} {:>14}",
            format!("Election{} ({:?})", m.index(), m),
            r.advice_bits(),
            r.generic.time,
            r.time_bound
        );
    }
    println!("\nEvery run elects the same unique leader; only the knowledge/time budget changes.");
}

//! Tour of the lower-bound graph families: build each construction from the
//! paper's proofs and verify its advertised properties.
//!
//! ```text
//! cargo run --example lower_bound_families
//! ```

use anonymous_election::families::necklace::NecklaceParams;
use anonymous_election::families::ring_of_cliques::{family_gk_size, ring_of_cliques_base};
use anonymous_election::families::{
    clique_f, family_f_size, hairy_ring, lock_chain_graph, necklace_base, z_lock,
};
use anonymous_election::graph::algo;
use anonymous_election::views::election_index;

fn main() {
    // F(x): the clique family every lower bound builds on.
    let x = 3;
    println!("F({x}) has {} members; member 5:", family_f_size(x));
    let c5 = clique_f(x, 5);
    println!(
        "  {} nodes, {} edges, regular = {}",
        c5.num_nodes(),
        c5.num_edges(),
        c5.is_regular()
    );

    // Theorem 3.2: the ring of cliques (φ = 1, advice Ω(n log log n)).
    let h = ring_of_cliques_base(8, x);
    println!(
        "\nring-of-cliques H_8: n = {}, φ = {:?}, family size (k=8) = {} graphs",
        h.num_nodes(),
        election_index(&h),
        family_gk_size(8)
    );

    // Theorem 3.3: the necklaces (election index exactly φ).
    let params = NecklaceParams { k: 4, x: 3, phi: 3 };
    let neck = necklace_base(params);
    println!(
        "necklace M_4 (designed φ = 3): n = {}, measured φ = {:?}",
        neck.num_nodes(),
        election_index(&neck)
    );

    // Theorem 4.2: locks and the initial lock-chain family.
    let lock = z_lock(5);
    println!(
        "5-lock: central degree {}, principal degree {}",
        lock.graph.degree(lock.central),
        lock.graph.degree(lock.principal)
    );
    let lc = lock_chain_graph(2, 2, 0);
    println!(
        "lock-chain T_0 member 0: n = {}, φ = {:?}, D = {}, principal distance = {}",
        lc.graph.num_nodes(),
        election_index(&lc.graph),
        algo::diameter(&lc.graph),
        algo::distance(&lc.graph, lc.left_principal, lc.right_principal)
    );

    // Proposition 4.1: hairy rings.
    let hairy = hairy_ring(&[1, 0, 2, 0, 3, 0]);
    println!(
        "hairy ring: n = {}, φ = {:?} (feasible thanks to the unique largest star)",
        hairy.num_nodes(),
        election_index(&hairy)
    );
}

//! Cross-crate integration tests: the full election pipeline on the paper's
//! own graph families and on mixed workloads.

use anonymous_election::election::milestones::{election_milestone, Milestone};
use anonymous_election::election::{compute_advice, elect_all, generic_elect_all, verify_election};
use anonymous_election::families::necklace::NecklaceParams;
use anonymous_election::families::ring_of_cliques::ring_of_cliques_base;
use anonymous_election::families::{
    hairy_ring, lock_chain_graph, necklace, necklace_base, stretched_gadget,
};
use anonymous_election::graph::{algo, generators};
use anonymous_election::sim::exchange_views;
use anonymous_election::views::{election_index, AugmentedView};

#[test]
fn minimum_time_election_on_the_ring_of_cliques_family() {
    // The Theorem 3.2 family has φ = 1, so the whole pipeline must elect in a
    // single round on every member.
    for assignment in [
        vec![0u64, 1, 2, 3, 4, 5],
        vec![0, 5, 4, 3, 2, 1],
        vec![0, 2, 4, 1, 3, 5],
    ] {
        let g = anonymous_election::families::ring_of_cliques(6, 3, &assignment);
        let outcome = elect_all(&g).expect("feasible");
        assert_eq!(outcome.time, 1);
        for (v, p) in outcome.outputs.iter().enumerate() {
            assert!(p.is_simple(&g, v));
            assert_eq!(p.endpoint(&g, v), Some(outcome.leader));
        }
    }
}

#[test]
fn minimum_time_election_on_necklaces_uses_exactly_phi_rounds() {
    for phi in [2usize, 3] {
        let params = NecklaceParams { k: 4, x: 3, phi };
        let g = necklace_base(params);
        let outcome = elect_all(&g).expect("necklaces are feasible");
        assert_eq!(outcome.time, phi);
        assert_eq!(outcome.phi, phi);
    }
}

#[test]
fn coded_necklaces_elect_and_advice_differs_across_codes() {
    // Claim 3.11 in executable form: two members of N_k that differ only in
    // an inner diamond still elect correctly, and the oracle's advice strings
    // for them are different (they must be, or the common-output argument
    // would break one of them).
    let params = NecklaceParams { k: 6, x: 3, phi: 2 };
    let g1 = necklace(params, &[0, 0, 1, 2, 0, 0]);
    let g2 = necklace(params, &[0, 0, 2, 1, 0, 0]);
    let a1 = compute_advice(&g1).unwrap();
    let a2 = compute_advice(&g2).unwrap();
    assert_ne!(a1.bits, a2.bits);
    assert!(elect_all(&g1).is_ok());
    assert!(elect_all(&g2).is_ok());
}

#[test]
fn generic_election_respects_lemma_4_1_on_families() {
    let graphs = vec![
        ring_of_cliques_base(6, 3),
        necklace_base(NecklaceParams { k: 4, x: 3, phi: 2 }),
        lock_chain_graph(2, 2, 0).graph,
        hairy_ring(&[1, 0, 2, 0, 3, 0]),
    ];
    for g in graphs {
        let phi = election_index(&g).expect("feasible");
        let d = algo::diameter(&g);
        for x in [phi, phi + 2] {
            let outcome = generic_elect_all(&g, x).unwrap();
            assert!(outcome.time <= d + x + 1);
            assert!(verify_election(&g, &outcome.outputs).is_ok());
        }
    }
}

#[test]
fn milestones_and_minimum_time_agree_on_the_leader_up_to_view_order() {
    // Generic elects the node with the smallest depth-x view; Elect elects
    // the node labeled 1 by the trie labeling. Both are valid leaders; what
    // must agree is that each run is internally consistent. Here we check
    // both pipelines fully verify on the same graphs.
    let g = generators::lollipop(6, 5);
    let fast = elect_all(&g).unwrap();
    assert!(verify_election(&g, &fast.outputs).is_ok());
    for m in Milestone::ALL {
        let slow = election_milestone(&g, m, 2).unwrap();
        assert!(verify_election(&g, &slow.generic.outputs).is_ok());
    }
}

#[test]
fn exchanged_views_on_families_match_central_computation() {
    let g = ring_of_cliques_base(4, 3);
    let exchanged = exchange_views(&g, 2).unwrap();
    let central = AugmentedView::compute_all(&g, 2);
    assert_eq!(exchanged, central);
}

#[test]
fn elect_all_completes_on_the_smallest_large_graphs_tier() {
    // The ~1000-node tier of the benchmark sweep (ring of cliques, necklace,
    // sparse random), end to end through the arena-based pipeline: advice,
    // simulated COM exchange, labeling, verification — all in test (debug)
    // mode. The 5k/10k tiers run in the release-mode `bench-elect` sweep.
    let tier = anet_bench_free_workloads_smallest_tier();
    assert_eq!(tier.len(), 3);
    for (name, g) in tier {
        let phi = election_index(&g).expect("tier instances are feasible");
        let outcome = elect_all(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(outcome.time, phi, "{name}: Theorem 3.1 time");
        assert_eq!(outcome.outputs.len(), g.num_nodes());
        assert!(verify_election(&g, &outcome.outputs).is_ok(), "{name}");
        // The exchange moved O(m) words per round: 2 messages per edge per
        // round, 2 words each.
        assert_eq!(outcome.stats.messages, 2 * g.num_edges() * phi, "{name}");
        assert_eq!(
            outcome.stats.message_words,
            2 * outcome.stats.messages,
            "{name}"
        );
        // Hash-consing keeps the working set at O(n) records per depth.
        assert!(
            outcome.distinct_views <= (phi + 1) * g.num_nodes(),
            "{name}"
        );
    }
}

/// The smallest `large_graphs()` tier, reconstructed without depending on
/// `anet-bench` (the umbrella crate does not link the bench harness): the
/// same three ~1000-node instances `workloads::large_graphs_up_to(1100)`
/// yields.
fn anet_bench_free_workloads_smallest_tier() -> Vec<(String, anonymous_election::graph::Graph)> {
    use anonymous_election::families::ring_of_cliques;
    vec![
        (
            "ring_of_cliques(k=166,x=5)".into(),
            ring_of_cliques::ring_of_cliques_base(166, 5),
        ),
        (
            "necklace(k=92,x=5,phi=3)".into(),
            necklace_base(NecklaceParams {
                k: 92,
                x: 5,
                phi: 3,
            }),
        ),
        (
            "random_sparse(n=1000)".into(),
            generators::random_connected_sparse(1000, 1000, 101),
        ),
    ]
}

#[test]
fn stretched_gadget_elects_despite_local_symmetry() {
    // The Proposition 4.1 gadget is feasible (the hub star is unique), so
    // given enough time and the right advice the election still succeeds —
    // the impossibility is only for advice that does not grow with the family.
    let (g, _hub, _foci) = stretched_gadget(&[1, 0, 2, 0, 3, 0], 0, 3, 8);
    let phi = election_index(&g).expect("feasible");
    let outcome = elect_all(&g).unwrap();
    assert_eq!(outcome.time, phi);
    let d = algo::diameter(&g);
    let slow = generic_elect_all(&g, phi).unwrap();
    assert!(slow.time <= d + phi + 1);
}

#[test]
fn infeasible_graphs_are_rejected_by_every_pipeline() {
    for g in [
        generators::ring(6),
        generators::hypercube(3),
        generators::torus(3, 3),
    ] {
        assert!(election_index(&g).is_none());
        assert!(elect_all(&g).is_err());
        assert!(election_milestone(&g, Milestone::AddConstant, 2).is_err());
    }
}

#[test]
fn advice_sizes_track_the_theorem_3_1_bound_on_families() {
    let graphs = vec![
        ring_of_cliques_base(6, 3),
        ring_of_cliques_base(10, 4),
        necklace_base(NecklaceParams { k: 4, x: 3, phi: 3 }),
        lock_chain_graph(2, 2, 1).graph,
    ];
    for g in graphs {
        let advice = compute_advice(&g).unwrap();
        let n = g.num_nodes() as f64;
        assert!(
            (advice.size_bits() as f64) <= 400.0 * n * (n.log2() + 1.0),
            "advice {} bits for n = {}",
            advice.size_bits(),
            n
        );
    }
}

//! Property-based tests (proptest) on the core invariants of the
//! reproduction: encodings round-trip, election is correct and time-optimal
//! on arbitrary feasible graphs, the refinement engine agrees with the
//! definitional view comparison, and outcomes are invariant under simulator
//! node relabeling.

use proptest::prelude::*;

use anonymous_election::advice::{codec, BitString};
use anonymous_election::election::advice_build::compute_advice_reference;
use anonymous_election::election::{
    compute_advice, elect_all, election_milestone, generic_elect_all, remark_elect_all,
    scheme_suite, AdviceScheme, ExecutionModel, Generic, Instance, Milestone, MilestoneScheme,
    MinTime, Remark,
};
use anonymous_election::graph::lift::{identity_voltage, VoltageGraph};
use anonymous_election::graph::{algo, generators, lift, relabel};
use anonymous_election::sim::com::exchange_views_tree;
use anonymous_election::sim::{exchange_views, CrashEvent, CrashSemantics, FaultPlan};
use anonymous_election::views::{
    election_index, election_index_naive, AugmentedView, RefineOptions, ShardedViewArena,
    ViewArena, ViewClasses,
};

/// Strategy: a connected random graph described by (size, edge probability,
/// seed).
fn graph_params() -> impl Strategy<Value = (usize, f64, u64)> {
    (4usize..24, 0.05f64..0.5, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn concat_decode_roundtrip(parts in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 0..24), 0..12)) {
        let parts: Vec<BitString> = parts.iter().map(|p| BitString::from_bits(p)).collect();
        let enc = codec::concat(&parts);
        let dec = codec::decode(&enc).unwrap();
        if parts.is_empty() {
            prop_assert!(dec.is_empty());
        } else {
            prop_assert_eq!(dec, parts);
        }
    }

    #[test]
    fn uint_bitstring_roundtrip(x in any::<u64>()) {
        prop_assert_eq!(BitString::from_uint(x).to_uint(), Some(x));
    }

    #[test]
    fn refinement_classes_agree_with_explicit_views((n, p, seed) in graph_params()) {
        let g = generators::random_connected(n, p, seed);
        let depth = 3usize;
        let table = ViewClasses::compute(&g, depth);
        let views = AugmentedView::compute_all(&g, depth);
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(
                    table.class_of(depth, u) == table.class_of(depth, v),
                    views[u] == views[v]
                );
            }
        }
    }

    #[test]
    fn refine_engine_matches_btreemap_oracle((n, p, seed) in graph_params()) {
        // The flat-buffer sort-based engine must reproduce the seed BTreeMap
        // ranking exactly: same class rows (hence same canonical order) and
        // same class counts at every depth.
        let g = generators::random_connected(n, p, seed);
        let depth = 4usize;
        let table = ViewClasses::compute(&g, depth);
        let oracle = ViewClasses::compute_legacy(&g, depth);
        for d in 0..=depth {
            prop_assert_eq!(table.classes_at(d), oracle.classes_at(d));
            prop_assert_eq!(table.num_classes(d), oracle.num_classes(d));
        }
    }

    #[test]
    fn refinement_class_order_matches_canonical_view_order((n, p, seed) in graph_params()) {
        let g = generators::random_connected(n, p, seed);
        let depth = 3usize;
        let table = ViewClasses::compute(&g, depth);
        let views = AugmentedView::compute_all(&g, depth);
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(
                    table.class_of(depth, u).cmp(&table.class_of(depth, v)),
                    views[u].cmp(&views[v])
                );
            }
        }
    }

    #[test]
    fn election_index_engines_agree((n, p, seed) in graph_params()) {
        let g = generators::random_connected(n, p, seed);
        let fast = election_index(&g);
        let naive = election_index_naive(&g, 6);
        match (fast, naive) {
            (Some(f), Some(nv)) => prop_assert_eq!(f, nv),
            (Some(f), None) => prop_assert!(f > 6),
            (None, Some(_)) => prop_assert!(false, "naive found an index on an infeasible graph"),
            (None, None) => {}
        }
    }

    #[test]
    fn minimum_time_election_is_correct_and_time_optimal((n, p, seed) in graph_params()) {
        let g = generators::random_connected(n, p, seed);
        if let Some(phi) = election_index(&g) {
            // Keep the run tractable: deep views on dense graphs explode.
            prop_assume!(phi <= 4);
            let outcome = elect_all(&g).unwrap();
            prop_assert_eq!(outcome.time, phi);
            for (v, path) in outcome.outputs.iter().enumerate() {
                prop_assert!(path.is_simple(&g, v));
                prop_assert_eq!(path.endpoint(&g, v), Some(outcome.leader));
            }
        }
    }

    #[test]
    fn generic_election_obeys_lemma_4_1((n, p, seed) in graph_params()) {
        let g = generators::random_connected(n, p, seed);
        if let Some(phi) = election_index(&g) {
            let d = algo::diameter(&g);
            let outcome = generic_elect_all(&g, phi + 1).unwrap();
            prop_assert!(outcome.time <= d + phi + 2);
            for (v, path) in outcome.outputs.iter().enumerate() {
                prop_assert!(path.is_simple(&g, v));
            }
        }
    }

    #[test]
    fn election_outcome_is_invariant_under_node_relabeling((n, p, seed) in graph_params()) {
        let g = generators::random_connected(n, p, seed);
        if let Some(phi) = election_index(&g) {
            prop_assume!(phi <= 3);
            let (h, perm) = relabel::random_node_permutation(&g, seed ^ 0xabcd);
            let og = elect_all(&g).unwrap();
            let oh = elect_all(&h).unwrap();
            prop_assert_eq!(perm[og.leader], oh.leader);
            prop_assert_eq!(og.time, oh.time);
            prop_assert_eq!(og.advice_bits, oh.advice_bits);
        }
    }

    #[test]
    fn feasibility_is_invariant_under_port_preserving_isomorphism((n, p, seed) in graph_params()) {
        let g = generators::random_connected(n, p, seed);
        let (h, _) = relabel::random_node_permutation(&g, seed.wrapping_add(7));
        prop_assert_eq!(election_index(&g), election_index(&h));
    }

    #[test]
    fn arena_com_exchange_matches_materialized_tree_oracle((n, p, seed) in graph_params()) {
        // The hash-consed COM exchange must acquire views structurally equal
        // to those of the literal tree-shipping reading of Algorithm 1.
        let g = generators::random_connected(n, p, seed);
        for depth in 0..3usize {
            let arena_views = exchange_views(&g, depth).unwrap();
            let oracle_views = exchange_views_tree(&g, depth).unwrap();
            prop_assert_eq!(&arena_views, &oracle_views);
            // Both equal the centrally computed views.
            prop_assert_eq!(&arena_views, &AugmentedView::compute_all(&g, depth));
        }
    }

    #[test]
    fn arena_advice_matches_materialized_tree_reference((n, p, seed) in graph_params()) {
        // ComputeAdvice over the arena must emit bit-identical advice to the
        // original materialized-tree construction.
        let g = generators::random_connected(n, p, seed);
        if let Some(phi) = election_index(&g) {
            prop_assume!(phi <= 4);
            let arena = compute_advice(&g).unwrap();
            let reference = compute_advice_reference(&g).unwrap();
            prop_assert_eq!(&arena.bits, &reference.bits);
            prop_assert_eq!(&arena.labels, &reference.labels);
            prop_assert_eq!(arena.root, reference.root);
        }
    }

    #[test]
    fn session_schemes_pin_to_legacy_free_functions((n, p, seed) in graph_params()) {
        // A single warm Instance running every AdviceScheme must produce
        // bit-identical advice and identical (leader, time) to the
        // corresponding legacy free function (which builds a fresh one-shot
        // session per call): cache reuse may never change a result.
        let g = generators::random_connected(n, p, seed);
        if let Some(phi) = election_index(&g) {
            prop_assume!(phi <= 4);
            let inst = Instance::new(&g);

            let mt = MinTime.elect(&inst).unwrap();
            let legacy = elect_all(&g).unwrap();
            prop_assert_eq!(&mt.advice, &compute_advice(&g).unwrap().bits);
            prop_assert_eq!(mt.leader, legacy.leader);
            prop_assert_eq!(mt.time, legacy.time);
            prop_assert_eq!(mt.advice_bits(), legacy.advice_bits);

            let gn = Generic { x: phi + 1 }.elect(&inst).unwrap();
            let legacy = generic_elect_all(&g, phi + 1).unwrap();
            prop_assert_eq!(gn.leader, legacy.leader);
            prop_assert_eq!(gn.time, legacy.time);
            prop_assert_eq!(&gn.halt_rounds, &legacy.halt_rounds);
            prop_assert_eq!(&gn.outputs, &legacy.outputs);

            for m in Milestone::ALL {
                let ms = MilestoneScheme(m).elect(&inst).unwrap();
                let legacy = election_milestone(&g, m, 2).unwrap();
                prop_assert_eq!(&ms.advice, &legacy.advice);
                prop_assert_eq!(ms.parameter.unwrap(), legacy.parameter);
                prop_assert_eq!(ms.leader, legacy.generic.leader);
                prop_assert_eq!(ms.time, legacy.generic.time);
            }

            let rm = Remark.elect(&inst).unwrap();
            let legacy = remark_elect_all(&g).unwrap();
            prop_assert_eq!(&rm.advice, &legacy.advice);
            prop_assert_eq!(rm.leader, legacy.leader);
            prop_assert_eq!(rm.time, legacy.time);
        }
    }

    #[test]
    fn scheme_outcomes_are_equivariant_under_renumbering((n, p, seed) in graph_params()) {
        // The conformance contract for MinTime and Generic(x): a
        // node-renumbered isomorphic copy must elect the corresponding
        // leader with identical time and advice bits (node ids are harness
        // bookkeeping the algorithms never see).
        let g = generators::random_connected(n, p, seed);
        if let Some(phi) = election_index(&g) {
            prop_assume!(phi <= 4);
            let (h, perm) = relabel::random_node_permutation(&g, seed ^ 0x5ca1ab1e);
            let inst_g = Instance::new(&g);
            let inst_h = Instance::new(&h);
            let schemes: Vec<Box<dyn AdviceScheme>> =
                vec![Box::new(MinTime), Box::new(Generic { x: phi }), Box::new(Generic { x: phi + 3 })];
            for scheme in schemes {
                let og = scheme.elect(&inst_g).unwrap();
                let oh = scheme.elect(&inst_h).unwrap();
                prop_assert!(
                    oh.leader == perm[og.leader]
                        && oh.time == og.time
                        && oh.advice_bits() == og.advice_bits(),
                    "{} not equivariant: leader {} vs {}, time {} vs {}, bits {} vs {}",
                    scheme.name(),
                    oh.leader,
                    perm[og.leader],
                    oh.time,
                    og.time,
                    oh.advice_bits(),
                    og.advice_bits()
                );
                // Outputs correspond node by node through the permutation.
                for v in g.nodes() {
                    prop_assert_eq!(
                        oh.outputs[perm[v]].endpoint(&h, perm[v]),
                        og.outputs[v].endpoint(&g, v).map(|l| perm[l])
                    );
                }
            }
        }
    }

    #[test]
    fn phi_targeted_hits_its_target((t, s) in (1usize..22, any::<u64>())) {
        // The generator's contract: the election index equals the target
        // exactly, for every seed (the seed only varies the pendant chain).
        let g = generators::phi_targeted(t, s);
        prop_assert_eq!(election_index(&g), Some(t));
    }

    #[test]
    fn trivial_voltage_lifts_are_disjoint_covers((n, p, seed) in graph_params()) {
        // Identity voltages lift a connected base to k disjoint copies: the
        // connected lift does not exist, and every component replicates the
        // base exactly (same analysis, node for node up to renumbering).
        let g = generators::random_connected(n, p, seed);
        let k = 2 + (seed % 3) as usize;
        let vg = VoltageGraph::from_graph(&g, k, &identity_voltage(k));
        prop_assert!(vg.lift().is_err(), "identity lift must be disconnected");
        let comps = vg.lift_components().unwrap();
        prop_assert_eq!(comps.len(), k);
        let base_report = anonymous_election::views::election_index::analyze(&g);
        for c in &comps {
            prop_assert_eq!(c.num_nodes(), g.num_nodes());
            prop_assert_eq!(c.num_edges(), g.num_edges());
            prop_assert_eq!(
                &anonymous_election::views::election_index::analyze(c),
                &base_report
            );
        }
    }

    #[test]
    fn connected_lifts_are_infeasible_covers((n, p, seed) in (4usize..10, 0.3f64..0.7, any::<u64>())) {
        // A connected k-fold lift (k >= 2) is a fibration: all k nodes of a
        // fiber share every view, so the lift has no unique view
        // (infeasible) and its view quotient embeds in the base. The cached
        // Instance analysis must agree with the free view-class analysis on
        // every generated lift.
        let g = generators::random_connected(n, p, seed);
        let k = 2 + (seed % 2) as usize;
        prop_assume!(lift::random_lift(&g, k, seed).is_some());
        let lifted = lift::random_lift(&g, k, seed).unwrap();
        prop_assert_eq!(lifted.num_nodes(), k * g.num_nodes());
        let free = anonymous_election::views::election_index::analyze(&lifted);
        let inst = Instance::new(&lifted);
        prop_assert_eq!(inst.is_feasible(), free.feasible);
        prop_assert_eq!(&inst.feasibility(), &free);
        prop_assert!(!free.feasible, "a connected {k}-fold cover has no unique view");
        prop_assert!(
            free.distinct_views <= g.num_nodes(),
            "view quotient larger than the base: {} > {}",
            free.distinct_views,
            g.num_nodes()
        );
    }

    #[test]
    fn instance_queries_are_idempotent_and_computed_once((n, p, seed) in graph_params()) {
        // φ, diameter and class rows must be stable under repetition, and
        // the expensive analyses must run at most once per instance however
        // often they are queried.
        let g = generators::random_connected(n, p, seed);
        let inst = Instance::new(&g);
        let phi = inst.phi();
        prop_assert_eq!(phi.clone().ok(), election_index(&g));
        for _ in 0..3 {
            prop_assert_eq!(inst.phi(), phi.clone());
            prop_assert_eq!(inst.diameter(), algo::diameter(&g));
            prop_assert_eq!(inst.feasibility(), inst.feasibility());
        }
        let depth = phi.unwrap_or(2).min(4);
        let row = inst.class_row(depth);
        prop_assert_eq!(&row, &inst.class_row(depth));
        prop_assert_eq!(&row, &ViewClasses::compute(&g, depth).classes_at(depth).to_vec());
        let counts = inst.compute_counts();
        prop_assert_eq!(counts.analysis, 1);
        prop_assert!(counts.eccentricities <= 1);
        prop_assert!(counts.class_deepenings <= 1);
    }

    #[test]
    fn sharded_arena_pins_to_sequential_oracle_across_thread_counts((n, p, seed) in graph_params()) {
        // The striped million-node arena must be observationally identical
        // to the sequential seed arena: its numeric ids are
        // schedule-dependent, but under the canonical id correspondence
        // (levels[d][v] ↔ levels[d][v]) the class partitions, the canonical
        // total order and the interned-subtree count must all match, at
        // every worker count.
        let g = generators::random_connected(n, p, seed);
        let depth = 3usize;
        let mut seq = ViewArena::new();
        let seq_levels = seq.compute_levels(&g, depth);
        for threads in [1usize, 2, 8] {
            let sh = ShardedViewArena::new();
            let sh_levels = sh.compute_levels_with(&g, depth, threads);
            prop_assert_eq!(sh.len(), seq.len());
            prop_assert_eq!(sh_levels.len(), seq_levels.len());
            for d in 0..=depth {
                for u in g.nodes() {
                    // Structural identity under the canonical remap.
                    prop_assert_eq!(
                        sh.materialize(sh_levels[d][u]),
                        seq.materialize(seq_levels[d][u])
                    );
                    for v in g.nodes() {
                        // Identical partition and identical total order.
                        prop_assert_eq!(
                            sh.cmp_views(sh_levels[d][u], sh_levels[d][v]),
                            seq.cmp_views(seq_levels[d][u], seq_levels[d][v])
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_truncation_agrees_with_the_level_structure((n, p, seed) in graph_params()) {
        // truncate_one(B^d(v)) = B^{d-1}(v) on both arenas, id for id — the
        // memoized sharded truncation may never drift from the recursive
        // definition the sequential arena implements.
        let g = generators::random_connected(n, p, seed);
        let depth = 3usize;
        let mut seq = ViewArena::new();
        let seq_levels = seq.compute_levels(&g, depth);
        let sh = ShardedViewArena::new();
        let sh_levels = sh.compute_levels_with(&g, depth, 2);
        for d in 1..=depth {
            for v in g.nodes() {
                prop_assert_eq!(sh.truncate_one(sh_levels[d][v]), sh_levels[d - 1][v]);
                prop_assert_eq!(seq.truncate_one(seq_levels[d][v]), seq_levels[d - 1][v]);
            }
        }
    }

    #[test]
    fn parallel_refinement_is_bit_identical_across_thread_counts((n, p, seed) in graph_params()) {
        // The parallel rank passes must produce the *same numeric class
        // rows* as the sequential engine at every thread count — ranks are
        // canonical positions, not schedule artifacts.
        let g = generators::random_connected(n, p, seed);
        let depth = 4usize;
        let base = ViewClasses::compute_with(&g, depth, &RefineOptions { threads: 1 });
        for threads in [2usize, 3, 8] {
            let par = ViewClasses::compute_with(&g, depth, &RefineOptions { threads });
            for d in 0..=depth {
                prop_assert_eq!(par.classes_at(d), base.classes_at(d));
                prop_assert_eq!(par.num_classes(d), base.num_classes(d));
            }
        }
    }

    #[test]
    fn fault_free_adversarial_engine_is_bit_identical_to_the_clean_one((n, p, seed) in graph_params()) {
        // Under the empty fault plan the adversarial engine (AdvRunner via
        // elect_under) must reproduce the clean SyncRunner transcript exactly:
        // same outputs, same halt round, same message statistics.
        let g = generators::random_connected(n, p, seed);
        if let Some(phi) = election_index(&g) {
            prop_assume!(phi <= 4);
            let clean = elect_all(&g).unwrap();
            let inst = Instance::new(&g);
            for model in [ExecutionModel::Raw, ExecutionModel::ReliableLinks, ExecutionModel::Restartable] {
                let adv = inst.elect_under(&FaultPlan::none(), model, 1).unwrap();
                prop_assert_eq!(adv.leader, clean.leader);
                prop_assert_eq!(&adv.outputs, &clean.outputs);
                if model == ExecutionModel::Raw {
                    // The bare exchange is the very same transcript; the
                    // wrappers add protocol rounds/messages but must still
                    // elect identically (checked above).
                    prop_assert_eq!(adv.time, clean.time);
                    prop_assert_eq!(&adv.stats, &clean.stats);
                }
            }
        }
    }

    #[test]
    fn adversarial_runs_are_byte_identical_across_thread_counts((n, p, seed) in graph_params()) {
        // A fixed (seed, FaultPlan) pair must produce the same outcome on
        // every engine parallelism — the adversary is part of the input, not
        // of the schedule.
        let g = generators::random_connected(n, p, seed);
        if let Some(phi) = election_index(&g) {
            prop_assume!(phi <= 4);
            let inst = Instance::new(&g);
            let crash_node = (seed % n as u64) as usize;
            let plans = [
                (FaultPlan::phase_skew(seed), ExecutionModel::Raw),
                (FaultPlan::message_drops(seed, 110, 4), ExecutionModel::ReliableLinks),
                (
                    FaultPlan::crashing(
                        seed,
                        CrashSemantics::RestartFromInit,
                        vec![CrashEvent { node: crash_node, at: 1, recover_at: Some(3) }],
                    ),
                    ExecutionModel::Restartable,
                ),
            ];
            for (plan, model) in &plans {
                let base = inst.elect_under(plan, *model, 1).unwrap();
                for threads in [2usize, 3] {
                    let other = inst.elect_under(plan, *model, threads).unwrap();
                    prop_assert_eq!(other.leader, base.leader);
                    prop_assert_eq!(&other.outputs, &base.outputs);
                    prop_assert_eq!(other.time, base.time);
                    prop_assert_eq!(&other.stats, &base.stats);
                }
            }
        }
    }

    #[test]
    fn canon_refinement_agrees_with_the_views_engine((n, p, seed) in graph_params()) {
        // The service cache key (canonical form) and the quotient engine
        // both silently depend on canon.rs's hand-rolled colour refinement
        // computing the same stable partition as the anet-views engine: the
        // class count must equal the distinct-view count and the partitions
        // must have identical blocks, on random graphs, renumbered twins,
        // and voltage lifts alike.
        let g = generators::random_connected(n, p, seed);
        let (twin, _) = relabel::random_node_permutation(&g, seed ^ 0xABCD);
        let mut graphs = vec![g.clone(), twin];
        if let Some(lifted) = lift::random_lift(&g, 2, seed) {
            graphs.push(lifted);
        }
        for g in &graphs {
            let form = g.canonical_form();
            let report = anonymous_election::views::election_index::analyze(g);
            prop_assert_eq!(form.num_classes(), report.distinct_views);
            prop_assert_eq!(form.is_feasible(), report.feasible);
            let (table, stable) = ViewClasses::compute_until_stable(g);
            let row = table.row_at(stable);
            let colors = form.colors();
            for u in g.nodes() {
                for v in g.nodes() {
                    prop_assert_eq!(colors[u] == colors[v], row[u] == row[v]);
                }
            }
        }
    }

    #[test]
    fn quotient_transfer_is_bit_identical_across_the_scheme_suite((n, p, seed) in (4usize..12, 0.3f64..0.6, any::<u64>())) {
        // The umbrella transfer property: everything the quotient fast path
        // hands back — feasibility, φ, class rows, and (through the
        // certified base.lift() witness) every scheme's advice bits, time
        // and elected leader — is bit-identical to the direct computation,
        // including the infeasible-refusal path, on a random base, its
        // voltage lift, and a symmetric family member.
        let base = generators::random_connected(n, p, seed);
        let mut workloads = vec![base.clone()];
        if let Some(lifted) = lift::random_lift(&base, 2, seed) {
            workloads.push(lifted);
        }
        workloads.push(generators::ring(n.max(5)));
        for g in &workloads {
            let inst = Instance::new(g);
            inst.certify_quotient().unwrap();
            prop_assert_eq!(inst.quotient_feasibility().unwrap(), inst.feasibility());
            prop_assert_eq!(inst.quotient_size().unwrap(), inst.distinct_views());
            prop_assert_eq!(
                inst.quotient_size().unwrap() * inst.quotient_fold().unwrap(),
                g.num_nodes()
            );
            for depth in [0, inst.stable_depth(), inst.stable_depth() + 2] {
                prop_assert_eq!(inst.quotient_class_row(depth).unwrap(), inst.class_row(depth));
            }
            match inst.phi() {
                Err(_) => {
                    // Infeasible refusal transfers: the base-time report
                    // refuses, and every scheme of the suite refuses on the
                    // instance itself.
                    prop_assert!(!inst.quotient_feasibility().unwrap().feasible);
                    for scheme in scheme_suite(1) {
                        prop_assert!(scheme.elect(&inst).is_err(),
                            "{} must refuse an infeasible instance", scheme.name());
                    }
                }
                Ok(phi) => {
                    prop_assert_eq!(
                        inst.quotient_feasibility().unwrap().election_index,
                        Some(phi)
                    );
                    // Feasible ⇒ the base is the graph itself (fold 1); its
                    // lift is the certified witness — a relabeling of g —
                    // and every scheme's outcome transfers through the
                    // fiber permutation with identical time and advice.
                    let mbase = inst.minimum_base().unwrap();
                    prop_assert!(mbase.is_trivial(), "feasible => fold 1");
                    let witness = mbase.lift().unwrap();
                    let perm = mbase.node_permutation();
                    let inst_w = Instance::new(&witness);
                    for scheme in scheme_suite(phi) {
                        let a = scheme.elect(&inst).unwrap();
                        let b = scheme.elect(&inst_w).unwrap();
                        prop_assert_eq!(b.leader, perm[a.leader]);
                        prop_assert_eq!(b.time, a.time);
                        prop_assert_eq!(b.advice_bits(), a.advice_bits());
                        prop_assert_eq!(b.phi, a.phi);
                    }
                }
            }
        }
    }
}

//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace. See `vendor/README.md` for scope and caveats.
//!
//! Determinism contract: [`SeedableRng::seed_from_u64`] yields a fixed,
//! platform-independent stream (SplitMix64), so seeded graph generators are
//! reproducible across runs and machines.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core source of randomness: a stream of `u64` values.
pub trait RngCore {
    /// Returns the next value of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a deterministic generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a value of type `T` from a range-like object.
pub trait SampleRange<T> {
    /// Samples a single value from `self` using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is acceptable for the simulation workloads here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Maps a `u64` to the unit interval `[0, 1)` with 53 bits of precision.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should move something");
    }
}

//! Offline stand-in for the subset of the `criterion` 0.5 API used by this
//! workspace. Each benchmark runs a short warm-up followed by a fixed number
//! of timed iterations and prints one `group/id: median ns/iter` line —
//! enough to run `cargo bench` without a registry, with none of criterion's
//! statistics, HTML reports or CLI.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Number of timed iterations per benchmark (after one warm-up call).
const ITERATIONS: u32 = 10;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f);
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark identified by `id` with an explicit `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Runs a benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut f);
        self
    }

    /// Ends the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Timer handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: Option<u128>,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        let mut samples: Vec<u128> = (0..ITERATIONS)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed().as_nanos()
            })
            .collect();
        samples.sort_unstable();
        self.ns_per_iter = Some(samples[samples.len() / 2]);
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    f(&mut b);
    match b.ns_per_iter {
        Some(ns) => println!("{label}: {ns} ns/iter (median of {ITERATIONS})"),
        None => println!("{label}: no measurement (Bencher::iter never called)"),
    }
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed benchmark groups in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(3u32), &3u32, |b, &n| {
            b.iter(|| {
                ran += 1;
                (0..n).sum::<u32>()
            })
        });
        group.finish();
        assert!(ran >= ITERATIONS);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).0, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}

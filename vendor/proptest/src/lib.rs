//! Offline stand-in for the subset of the `proptest` 1.x API used by this
//! workspace. Each property runs `ProptestConfig::cases` deterministic
//! pseudo-random cases; a failing case panics with the case index and seed so
//! it can be replayed. There is no shrinking.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and the strategies for ranges and tuples.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generates one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_strategy_int_range!(usize, u64, u32, u8);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_strategy_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_strategy_tuple!(A: 0);
    impl_strategy_tuple!(A: 0, B: 1);
    impl_strategy_tuple!(A: 0, B: 1, C: 2);
    impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
}

pub mod arbitrary {
    //! `any::<T>()` strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Strategy generating an unconstrained value of `T`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(PhantomData<T>);

    /// Types with a canonical unconstrained strategy.
    pub trait Arbitrary: Sized {
        /// Generates one unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// Returns the unconstrained strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for u64 {
        fn arbitrary_value(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary_value(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary_value(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Configuration, the per-test RNG and the case driver.

    use crate::strategy::Strategy;

    /// Per-property configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of pseudo-random cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` and should not count as a
        /// failure.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed assertion with `message`.
        pub fn fail(message: String) -> Self {
            TestCaseError::Fail(message)
        }

        /// A rejected case with `message`.
        pub fn reject(message: String) -> Self {
            TestCaseError::Reject(message)
        }
    }

    /// Deterministic per-case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `seed`.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Returns the next `u64` of the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns the next value in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives one property over `config.cases` deterministic cases.
    /// Called by the `proptest!` macro expansion; not public API upstream.
    pub fn run_cases<S, F>(config: ProptestConfig, name: &str, strategy: S, mut body: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name.as_bytes());
        let mut rejected = 0u32;
        for case in 0..config.cases {
            let seed = base ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = TestRng::from_seed(seed);
            let value = strategy.generate(&mut rng);
            match body(value) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => rejected += 1,
                Err(TestCaseError::Fail(message)) => {
                    panic!("property `{name}` failed at case {case} (seed {seed:#x}): {message}")
                }
            }
        }
        assert!(
            rejected < config.cases,
            "property `{name}`: every case was rejected by prop_assume!"
        );
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod prelude {
    //! The glob-import surface: traits, `any`, config and the macros.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each body runs once per generated case and must
/// use the `prop_*` macros (not plain `assert!`) so rejections and failures
/// are routed to the case driver.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($pat:pat in $strategy:expr) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(
                    $config,
                    stringify!($name),
                    $strategy,
                    |$pat| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($pat:pat in $strategy:expr) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($pat in $strategy) $body)*
        }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Rejects the current case (it is skipped, not failed) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, u64)> {
        (1usize..10, any::<u64>())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds((n, _x) in pair()) {
            prop_assert!(n >= 1);
            prop_assert!(n < 10);
        }

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn assume_skips_cases(x in any::<u64>()) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        crate::test_runner::run_cases(
            ProptestConfig::with_cases(4),
            "always_fails",
            0usize..10,
            |_| Err(TestCaseError::fail("boom".to_string())),
        );
    }
}

//! Offline stand-in for the subset of the `parking_lot` 0.12 API used by
//! this workspace: a [`Mutex`] whose `lock()` returns the guard directly
//! (no poisoning), backed by `std::sync::Mutex`.

#![forbid(unsafe_code)]

/// A mutual-exclusion lock with `parking_lot`'s poison-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`]; releases the lock on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in another thread while holding the lock
    /// does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn concurrent_increments() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
